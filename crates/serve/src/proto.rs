//! Schema v1 of the kpa-serve wire protocol: typed requests,
//! response-frame builders, and the error-code vocabulary.
//!
//! # Framing
//!
//! One frame per line: a single JSON object terminated by `\n`, no
//! intra-frame newlines (the writer in [`crate::json`] never emits
//! them). Every request carries `"v": 1`; a server that sees any
//! other version answers with a fatal `bad_request` frame. Responses
//! carry `"ok": true` or `"ok": false` — nothing else distinguishes
//! success from error, so clients switch on that one key.
//!
//! # Requests
//!
//! | op       | fields                                               |
//! |----------|------------------------------------------------------|
//! | `hello`  | —                                                    |
//! | `load`   | `system` (catalog name) *or* `spec` (structural), plus `assignment` |
//! | `query`  | `queries`: array of query items (see [`QueryKind`])  |
//! | `stats`  | —                                                    |
//! | `metrics`| optional `format: "text"` for exposition lines       |
//! | `unload` | —                                                    |
//! | `bye`    | —                                                    |
//!
//! Any request may carry an integer `id`; the response echoes it.
//! Every reply additionally carries a server-minted `trace_id` (16 hex
//! digits) correlating the frame with the server's span trees; clients
//! that predate it ignore the unknown field.
//!
//! # Bit-faithful payloads
//!
//! Point-set payloads are the *words* of the underlying bitset,
//! serialized as 16-hex-digit strings (`"00000000000000a5"`). JSON
//! numbers cannot carry u64 bit patterns faithfully (readers may go
//! through f64), so hex strings are the only encoding under which
//! "server words == local words" is a meaningful bit-identity check —
//! which is exactly what `tests/serve_differential.rs` asserts.
//! Probabilities travel as exact-rational strings (`"1/3"`), never
//! floats.
//!
//! # Errors
//!
//! Error frames are `{"ok": false, "error": <code>, "message": ...,
//! "fatal": bool}`. *Recoverable* errors (unknown op, bad formula,
//! querying before a `load`) leave the connection open; *fatal* ones
//! (unparseable JSON, oversized frame, protocol-version mismatch) are
//! followed by the server closing the connection, since framing can no
//! longer be trusted. The codes live in [`codes`].

use crate::catalog::{SpecRound, SystemSpec};
use crate::json::{obj, Value};
use kpa_measure::Rat;

/// Protocol schema version spoken by this crate.
pub const PROTO_VERSION: i64 = 1;

/// The error-code vocabulary of schema v1. Codes are stable strings:
/// clients may match on them, messages are for humans only.
pub mod codes {
    /// The line was not valid JSON (fatal).
    pub const BAD_JSON: &str = "bad_json";
    /// The frame was valid JSON but not a valid request (fatal when
    /// the envelope itself is broken, e.g. wrong `v`).
    pub const BAD_REQUEST: &str = "bad_request";
    /// `op` named no known operation (recoverable).
    pub const UNKNOWN_OP: &str = "unknown_op";
    /// `query`/`unload` before any successful `load` (recoverable).
    pub const NO_SYSTEM: &str = "no_system";
    /// A formula failed to parse against the loaded system
    /// (recoverable).
    pub const PARSE_ERROR: &str = "parse_error";
    /// Evaluation failed — e.g. a probability space could not be
    /// constructed at the queried point (recoverable).
    pub const EVAL_ERROR: &str = "eval_error";
    /// The request line exceeded the server's frame limit (fatal).
    pub const FRAME_TOO_LONG: &str = "frame_too_long";
    /// The server is at its connection limit (fatal).
    pub const SERVER_BUSY: &str = "server_busy";
    /// `load` named a system the catalog does not know, or the
    /// structural spec was invalid (recoverable).
    pub const UNKNOWN_SYSTEM: &str = "unknown_system";
    /// A query named an agent the loaded system lacks (recoverable).
    pub const UNKNOWN_AGENT: &str = "unknown_agent";
    /// A threshold was not a rational in `[0, 1]` (recoverable).
    pub const BAD_ALPHA: &str = "bad_alpha";
    /// The connection sat idle past the server's timeout (fatal).
    pub const IDLE_TIMEOUT: &str = "idle_timeout";
    /// The server is shutting down (fatal).
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// A structured protocol error: stable code, human message, and
/// whether the server must close the connection after sending it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Whether the connection is unrecoverable after this error.
    pub fatal: bool,
}

impl ProtoError {
    /// A recoverable error (connection stays open).
    pub fn recoverable(code: &'static str, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
            fatal: false,
        }
    }

    /// A fatal error (server closes the connection after replying).
    pub fn fatal(code: &'static str, message: impl Into<String>) -> ProtoError {
        ProtoError {
            code,
            message: message.into(),
            fatal: true,
        }
    }

    /// The wire frame for this error, echoing `id` when present.
    #[must_use]
    pub fn frame(&self, id: Option<i64>) -> Value {
        let mut v = obj([
            ("ok", Value::Bool(false)),
            ("error", Value::Str(self.code.to_string())),
            ("message", Value::Str(self.message.clone())),
            ("fatal", Value::Bool(self.fatal)),
        ]);
        if let (Some(id), Value::Obj(m)) = (id, &mut v) {
            m.insert("id".to_string(), Value::Int(id));
        }
        v
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// What a single query item asks of the loaded model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKind {
    /// The satisfying point set of a formula (returned as words).
    Sat {
        /// Formula source text (parsed against the loaded system).
        formula: String,
    },
    /// Truth of a formula at one point.
    Holds {
        /// Formula source text.
        formula: String,
        /// `(tree, run, time)`.
        point: (usize, usize, usize),
    },
    /// Validity: truth at every point of the system.
    Everywhere {
        /// Formula source text.
        formula: String,
    },
    /// The point set of `Kᵢ φ` (returned as words).
    Knows {
        /// Knowing agent's name.
        agent: String,
        /// Formula source text.
        formula: String,
    },
    /// The point set of `Prᵢ(φ) ≥ α` (returned as words).
    PrGe {
        /// Agent whose probability is thresholded.
        agent: String,
        /// Threshold, an exact rational in `[0, 1]`.
        alpha: Rat,
        /// Formula source text.
        formula: String,
    },
    /// A whole threshold family `Prᵢ(φ) ≥ α₁…α_k` answered by the
    /// one-sweep family evaluator: one formula, k thresholds, k point
    /// sets back (one word array per α, in `alphas` order). Additive
    /// in schema v1 — servers that predate it answer `bad_request` for
    /// the unknown kind, which clients can fall back from by issuing k
    /// serial `pr_ge` items.
    PrGeFamily {
        /// Agent whose probability is thresholded.
        agent: String,
        /// Thresholds, exact rationals in `[0, 1]`, answered in order.
        alphas: Vec<Rat>,
        /// Formula source text.
        formula: String,
    },
    /// The `(inner, outer)` probability bounds at one point.
    Interval {
        /// Agent whose probability is asked.
        agent: String,
        /// `(tree, run, time)`.
        point: (usize, usize, usize),
        /// Formula source text.
        formula: String,
    },
}

/// One item of a `query` batch: a client-chosen id plus the ask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryItem {
    /// Client-chosen id, echoed on the matching result row.
    pub id: i64,
    /// What to evaluate.
    pub kind: QueryKind,
}

/// A decoded schema-v1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Version/identity handshake.
    Hello,
    /// Pin a system + assignment to the session.
    Load {
        /// Catalog name (`name[:param]`) — exclusive with `spec`.
        system: Option<String>,
        /// Structural spec — exclusive with `system`.
        spec: Option<SystemSpec>,
        /// Assignment spec (`post`, `fut`, `prior`, `opp:<agent>`).
        assignment: String,
    },
    /// Evaluate a batch of queries against the pinned model.
    Query {
        /// The batch, in submission order.
        items: Vec<QueryItem>,
    },
    /// Report per-session and process-wide metrics.
    Stats,
    /// Schema-v2 telemetry snapshot: cumulative and windowed
    /// histograms, top span sites, and artifact-cache occupancy.
    /// Additive in schema v1 — older servers answer `unknown_op`.
    Metrics {
        /// Whether the client asked for the text exposition
        /// (`"format": "text"`) instead of the structured frame.
        text: bool,
    },
    /// Unpin the session's model (the session survives).
    Unload,
    /// Close the connection cleanly.
    Bye,
}

/// A decoded request envelope: the optional echo id and the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The client's `id`, echoed on the response frame.
    pub id: Option<i64>,
    /// The request proper.
    pub req: Request,
}

fn need_str(v: &Value, key: &str) -> Result<String, ProtoError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            ProtoError::recoverable(codes::BAD_REQUEST, format!("missing string field {key:?}"))
        })
}

fn need_point(v: &Value) -> Result<(usize, usize, usize), ProtoError> {
    let bad = || {
        ProtoError::recoverable(
            codes::BAD_REQUEST,
            "field \"point\" must be [tree, run, time] with non-negative integers",
        )
    };
    let arr = v.get("point").and_then(Value::as_arr).ok_or_else(bad)?;
    if arr.len() != 3 {
        return Err(bad());
    }
    let part = |i: usize| -> Result<usize, ProtoError> {
        arr[i]
            .as_int()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(bad)
    };
    Ok((part(0)?, part(1)?, part(2)?))
}

fn need_alpha(v: &Value) -> Result<Rat, ProtoError> {
    let s = v.get("alpha").and_then(Value::as_str).ok_or_else(|| {
        ProtoError::recoverable(codes::BAD_ALPHA, "missing string field \"alpha\"")
    })?;
    let r: Rat = s
        .parse()
        .map_err(|_| ProtoError::recoverable(codes::BAD_ALPHA, format!("bad rational {s:?}")))?;
    if !r.is_probability() {
        return Err(ProtoError::recoverable(
            codes::BAD_ALPHA,
            format!("alpha {r} is not in [0, 1]"),
        ));
    }
    Ok(r)
}

fn need_alphas(v: &Value) -> Result<Vec<Rat>, ProtoError> {
    let arr = v.get("alphas").and_then(Value::as_arr).ok_or_else(|| {
        ProtoError::recoverable(codes::BAD_ALPHA, "missing array field \"alphas\"")
    })?;
    arr.iter()
        .map(|e| {
            let s = e.as_str().ok_or_else(|| {
                ProtoError::recoverable(codes::BAD_ALPHA, "alphas must be rational strings")
            })?;
            let r: Rat = s.parse().map_err(|_| {
                ProtoError::recoverable(codes::BAD_ALPHA, format!("bad rational {s:?}"))
            })?;
            if !r.is_probability() {
                return Err(ProtoError::recoverable(
                    codes::BAD_ALPHA,
                    format!("alpha {r} is not in [0, 1]"),
                ));
            }
            Ok(r)
        })
        .collect()
}

fn decode_query_item(v: &Value, index: usize) -> Result<QueryItem, ProtoError> {
    let at = |e: ProtoError| ProtoError {
        message: format!("query[{index}]: {}", e.message),
        ..e
    };
    let id = v.get("id").and_then(Value::as_int).unwrap_or(index as i64);
    let kind = need_str(v, "kind").map_err(at)?;
    let kind = match kind.as_str() {
        "sat" => QueryKind::Sat {
            formula: need_str(v, "formula").map_err(at)?,
        },
        "holds" => QueryKind::Holds {
            formula: need_str(v, "formula").map_err(at)?,
            point: need_point(v).map_err(at)?,
        },
        "everywhere" => QueryKind::Everywhere {
            formula: need_str(v, "formula").map_err(at)?,
        },
        "knows" => QueryKind::Knows {
            agent: need_str(v, "agent").map_err(at)?,
            formula: need_str(v, "formula").map_err(at)?,
        },
        "pr_ge" => QueryKind::PrGe {
            agent: need_str(v, "agent").map_err(at)?,
            alpha: need_alpha(v).map_err(at)?,
            formula: need_str(v, "formula").map_err(at)?,
        },
        "pr_ge_family" => QueryKind::PrGeFamily {
            agent: need_str(v, "agent").map_err(at)?,
            alphas: need_alphas(v).map_err(at)?,
            formula: need_str(v, "formula").map_err(at)?,
        },
        "interval" => QueryKind::Interval {
            agent: need_str(v, "agent").map_err(at)?,
            point: need_point(v).map_err(at)?,
            formula: need_str(v, "formula").map_err(at)?,
        },
        other => {
            return Err(ProtoError::recoverable(
                codes::BAD_REQUEST,
                format!("query[{index}]: unknown kind {other:?}"),
            ))
        }
    };
    Ok(QueryItem { id, kind })
}

fn decode_spec(v: &Value) -> Result<SystemSpec, ProtoError> {
    let bad = |m: String| ProtoError::recoverable(codes::UNKNOWN_SYSTEM, format!("spec: {m}"));
    let nat = |key: &str| -> Result<usize, ProtoError> {
        v.get(key)
            .and_then(Value::as_int)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| bad(format!("missing non-negative integer {key:?}")))
    };
    let agents = nat("agents")?;
    let clockless_mask = u8::try_from(nat("clockless_mask")?)
        .map_err(|_| bad("clockless_mask out of range".into()))?;
    let two_adversaries = v
        .get("two_adversaries")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let rounds_v = v
        .get("rounds")
        .and_then(Value::as_arr)
        .ok_or_else(|| bad("missing array \"rounds\"".into()))?;
    let mut rounds = Vec::with_capacity(rounds_v.len());
    for (k, rv) in rounds_v.iter().enumerate() {
        let bias_s = rv
            .get("bias")
            .and_then(Value::as_str)
            .ok_or_else(|| bad(format!("rounds[{k}]: missing string \"bias\"")))?;
        let bias: Rat = bias_s
            .parse()
            .map_err(|_| bad(format!("rounds[{k}]: bad rational {bias_s:?}")))?;
        let observers = rv
            .get("observers")
            .and_then(Value::as_int)
            .and_then(|n| u8::try_from(n).ok())
            .ok_or_else(|| bad(format!("rounds[{k}]: missing byte \"observers\"")))?;
        rounds.push(SpecRound { bias, observers });
    }
    Ok(SystemSpec {
        agents,
        two_adversaries,
        clockless_mask,
        rounds,
    })
}

/// Decodes one parsed frame into a typed request. `max_batch` bounds
/// the number of items a single `query` may carry.
///
/// # Errors
///
/// Envelope violations (non-object frame, missing/wrong `v`) are
/// fatal; everything else is recoverable.
pub fn decode(frame: &Value, max_batch: usize) -> Result<Envelope, ProtoError> {
    if frame.as_obj().is_none() {
        return Err(ProtoError::fatal(
            codes::BAD_REQUEST,
            "frame must be a JSON object",
        ));
    }
    match frame.get("v").and_then(Value::as_int) {
        Some(v) if v == PROTO_VERSION => {}
        Some(v) => {
            return Err(ProtoError::fatal(
                codes::BAD_REQUEST,
                format!("unsupported protocol version {v} (this server speaks {PROTO_VERSION})"),
            ))
        }
        None => {
            return Err(ProtoError::fatal(
                codes::BAD_REQUEST,
                "missing integer field \"v\"",
            ))
        }
    }
    let id = frame.get("id").and_then(Value::as_int);
    let op = frame.get("op").and_then(Value::as_str).ok_or_else(|| {
        ProtoError::recoverable(codes::BAD_REQUEST, "missing string field \"op\"")
    })?;
    let req = match op {
        "hello" => Request::Hello,
        "load" => {
            let system = frame
                .get("system")
                .and_then(Value::as_str)
                .map(str::to_string);
            let spec = match frame.get("spec") {
                Some(sv) => Some(decode_spec(sv)?),
                None => None,
            };
            if system.is_some() == spec.is_some() {
                return Err(ProtoError::recoverable(
                    codes::BAD_REQUEST,
                    "load takes exactly one of \"system\" or \"spec\"",
                ));
            }
            let assignment = need_str(frame, "assignment")?;
            Request::Load {
                system,
                spec,
                assignment,
            }
        }
        "query" => {
            let arr = frame
                .get("queries")
                .and_then(Value::as_arr)
                .ok_or_else(|| {
                    ProtoError::recoverable(codes::BAD_REQUEST, "missing array field \"queries\"")
                })?;
            if arr.len() > max_batch {
                return Err(ProtoError::recoverable(
                    codes::BAD_REQUEST,
                    format!("batch of {} exceeds the limit of {max_batch}", arr.len()),
                ));
            }
            let items = arr
                .iter()
                .enumerate()
                .map(|(i, item)| decode_query_item(item, i))
                .collect::<Result<Vec<_>, _>>()?;
            Request::Query { items }
        }
        "stats" => Request::Stats,
        "metrics" => {
            let text = match frame.get("format").and_then(Value::as_str) {
                None => false,
                Some("text") => true,
                Some(other) => {
                    return Err(ProtoError::recoverable(
                        codes::BAD_REQUEST,
                        format!("unknown metrics format {other:?} (only \"text\")"),
                    ))
                }
            };
            Request::Metrics { text }
        }
        "unload" => Request::Unload,
        "bye" => Request::Bye,
        other => {
            return Err(ProtoError::recoverable(
                codes::UNKNOWN_OP,
                format!("unknown op {other:?}"),
            ))
        }
    };
    Ok(Envelope { id, req })
}

/// Encodes a point-set word slice as the wire form: an array of
/// 16-hex-digit strings, most significant nibble first per word.
#[must_use]
pub fn words_to_value(words: &[u64]) -> Value {
    Value::Arr(
        words
            .iter()
            .map(|w| Value::Str(format!("{w:016x}")))
            .collect(),
    )
}

/// Decodes the wire form back into words (the client half of the
/// bit-identity check).
///
/// # Errors
///
/// Reports malformed arrays and non-hex entries as strings.
pub fn words_from_value(v: &Value) -> Result<Vec<u64>, String> {
    let arr = v.as_arr().ok_or("words: expected an array")?;
    arr.iter()
        .map(|e| {
            let s = e.as_str().ok_or("words: expected hex strings")?;
            if s.len() != 16 {
                return Err(format!("words: {s:?} is not 16 hex digits"));
            }
            u64::from_str_radix(s, 16).map_err(|_| format!("words: bad hex {s:?}"))
        })
        .collect()
}

/// A success frame: `{"ok": true, "op": <op>, ...fields}`, echoing
/// `id` when present.
#[must_use]
pub fn ok_frame(op: &str, id: Option<i64>, fields: Vec<(&str, Value)>) -> Value {
    let mut m = std::collections::BTreeMap::new();
    m.insert("ok".to_string(), Value::Bool(true));
    m.insert("op".to_string(), Value::Str(op.to_string()));
    if let Some(id) = id {
        m.insert("id".to_string(), Value::Int(id));
    }
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Obj(m)
}

/// Serializes a structural spec into its wire object (the inverse of
/// the `load` decoder) — used by clients and the differential tests.
#[must_use]
pub fn spec_to_value(spec: &SystemSpec) -> Value {
    obj([
        ("agents", Value::Int(spec.agents as i64)),
        ("two_adversaries", Value::Bool(spec.two_adversaries)),
        ("clockless_mask", Value::Int(i64::from(spec.clockless_mask))),
        (
            "rounds",
            Value::Arr(
                spec.rounds
                    .iter()
                    .map(|r| {
                        obj([
                            ("bias", Value::Str(r.bias.to_string())),
                            ("observers", Value::Int(i64::from(r.observers))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serializes one query item into its wire object (client half).
#[must_use]
pub fn query_item_to_value(item: &QueryItem) -> Value {
    let point_v = |p: (usize, usize, usize)| {
        Value::Arr(vec![
            Value::Int(p.0 as i64),
            Value::Int(p.1 as i64),
            Value::Int(p.2 as i64),
        ])
    };
    let mut fields = vec![("id", Value::Int(item.id))];
    match &item.kind {
        QueryKind::Sat { formula } => {
            fields.push(("kind", Value::Str("sat".into())));
            fields.push(("formula", Value::Str(formula.clone())));
        }
        QueryKind::Holds { formula, point } => {
            fields.push(("kind", Value::Str("holds".into())));
            fields.push(("formula", Value::Str(formula.clone())));
            fields.push(("point", point_v(*point)));
        }
        QueryKind::Everywhere { formula } => {
            fields.push(("kind", Value::Str("everywhere".into())));
            fields.push(("formula", Value::Str(formula.clone())));
        }
        QueryKind::Knows { agent, formula } => {
            fields.push(("kind", Value::Str("knows".into())));
            fields.push(("agent", Value::Str(agent.clone())));
            fields.push(("formula", Value::Str(formula.clone())));
        }
        QueryKind::PrGe {
            agent,
            alpha,
            formula,
        } => {
            fields.push(("kind", Value::Str("pr_ge".into())));
            fields.push(("agent", Value::Str(agent.clone())));
            fields.push(("alpha", Value::Str(alpha.to_string())));
            fields.push(("formula", Value::Str(formula.clone())));
        }
        QueryKind::PrGeFamily {
            agent,
            alphas,
            formula,
        } => {
            fields.push(("kind", Value::Str("pr_ge_family".into())));
            fields.push(("agent", Value::Str(agent.clone())));
            fields.push((
                "alphas",
                Value::Arr(alphas.iter().map(|a| Value::Str(a.to_string())).collect()),
            ));
            fields.push(("formula", Value::Str(formula.clone())));
        }
        QueryKind::Interval {
            agent,
            point,
            formula,
        } => {
            fields.push(("kind", Value::Str("interval".into())));
            fields.push(("agent", Value::Str(agent.clone())));
            fields.push(("point", point_v(*point)));
            fields.push(("formula", Value::Str(formula.clone())));
        }
    }
    let mut m = std::collections::BTreeMap::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Obj(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn decode_line(line: &str) -> Result<Envelope, ProtoError> {
        decode(&parse(line).unwrap(), 64)
    }

    #[test]
    fn envelope_versioning() {
        assert_eq!(
            decode_line(r#"{"v":1,"op":"hello"}"#).unwrap().req,
            Request::Hello
        );
        let e = decode_line(r#"{"op":"hello"}"#).unwrap_err();
        assert!(e.fatal);
        let e = decode_line(r#"{"v":2,"op":"hello"}"#).unwrap_err();
        assert!(e.fatal);
        let e = decode(&parse("[1]").unwrap(), 64).unwrap_err();
        assert!(e.fatal);
        let e = decode_line(r#"{"v":1,"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(e.code, codes::UNKNOWN_OP);
        assert!(!e.fatal);
    }

    #[test]
    fn metrics_decodes_with_optional_text_format() {
        assert_eq!(
            decode_line(r#"{"v":1,"op":"metrics"}"#).unwrap().req,
            Request::Metrics { text: false }
        );
        assert_eq!(
            decode_line(r#"{"v":1,"op":"metrics","format":"text"}"#)
                .unwrap()
                .req,
            Request::Metrics { text: true }
        );
        let e = decode_line(r#"{"v":1,"op":"metrics","format":"xml"}"#).unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
        assert!(!e.fatal);
    }

    #[test]
    fn load_requires_exactly_one_source() {
        let e = decode_line(r#"{"v":1,"op":"load","assignment":"post"}"#).unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
        let ok = decode_line(r#"{"v":1,"op":"load","system":"die","assignment":"post"}"#).unwrap();
        assert!(matches!(
            ok.req,
            Request::Load {
                system: Some(_),
                spec: None,
                ..
            }
        ));
    }

    #[test]
    fn query_items_round_trip() {
        let items = vec![
            QueryItem {
                id: 7,
                kind: QueryKind::Sat {
                    formula: "K{p3} c=h".into(),
                },
            },
            QueryItem {
                id: 8,
                kind: QueryKind::PrGe {
                    agent: "p1".into(),
                    alpha: Rat::new(1, 3),
                    formula: "c=h".into(),
                },
            },
            QueryItem {
                id: 9,
                kind: QueryKind::Interval {
                    agent: "p2".into(),
                    point: (0, 1, 2),
                    formula: "<>c=h".into(),
                },
            },
        ];
        let frame = ok_frame(
            "query",
            Some(3),
            vec![(
                "queries",
                Value::Arr(items.iter().map(query_item_to_value).collect()),
            )],
        );
        // Client-built frames lack "v"; splice it in as a client would.
        let mut line = frame.to_json();
        line.insert_str(1, "\"v\":1,\"op\":\"query\",");
        let env = decode_line(&line).unwrap();
        assert_eq!(env.id, Some(3));
        assert_eq!(env.req, Request::Query { items });
    }

    #[test]
    fn pr_ge_family_round_trips_and_validates() {
        let items = vec![QueryItem {
            id: 4,
            kind: QueryKind::PrGeFamily {
                agent: "p1".into(),
                alphas: vec![Rat::new(1, 4), Rat::new(1, 2), Rat::ONE],
                formula: "<>c=h".into(),
            },
        }];
        let frame = ok_frame(
            "query",
            None,
            vec![(
                "queries",
                Value::Arr(items.iter().map(query_item_to_value).collect()),
            )],
        );
        let mut line = frame.to_json();
        line.insert_str(1, "\"v\":1,\"op\":\"query\",");
        let env = decode_line(&line).unwrap();
        assert_eq!(env.req, Request::Query { items });
        // Every alpha in the family is validated like a lone pr_ge.
        let e = decode_line(
            r#"{"v":1,"op":"query","queries":[{"kind":"pr_ge_family","agent":"p1","alphas":["1/2","5/4"],"formula":"x"}]}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, codes::BAD_ALPHA);
        assert!(!e.fatal);
        let e = decode_line(
            r#"{"v":1,"op":"query","queries":[{"kind":"pr_ge_family","agent":"p1","formula":"x"}]}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, codes::BAD_ALPHA);
    }

    #[test]
    fn batch_limit_and_alpha_validation() {
        let e = decode(
            &parse(r#"{"v":1,"op":"query","queries":[{"kind":"sat","formula":"x"},{"kind":"sat","formula":"y"}]}"#)
                .unwrap(),
            1,
        )
        .unwrap_err();
        assert_eq!(e.code, codes::BAD_REQUEST);
        let e = decode_line(
            r#"{"v":1,"op":"query","queries":[{"kind":"pr_ge","agent":"p1","alpha":"3/2","formula":"x"}]}"#,
        )
        .unwrap_err();
        assert_eq!(e.code, codes::BAD_ALPHA);
        assert!(!e.fatal);
    }

    #[test]
    fn words_round_trip_bit_exactly() {
        let words = vec![0u64, u64::MAX, 0xdead_beef_0123_4567];
        let v = words_to_value(&words);
        assert_eq!(words_from_value(&v).unwrap(), words);
        assert!(words_from_value(&parse(r#"["zz"]"#).unwrap()).is_err());
        assert!(words_from_value(&parse(r#"["ffff"]"#).unwrap()).is_err());
    }

    #[test]
    fn spec_round_trips_through_the_wire_shape() {
        let spec = SystemSpec {
            agents: 3,
            two_adversaries: true,
            clockless_mask: 2,
            rounds: vec![SpecRound {
                bias: Rat::new(2, 5),
                observers: 0b101,
            }],
        };
        let v = spec_to_value(&spec);
        let back = decode_spec(&parse(&v.to_json()).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn error_frames_echo_ids() {
        let e = ProtoError::recoverable(codes::NO_SYSTEM, "no model pinned");
        let f = e.frame(Some(42));
        let s = f.to_json();
        assert!(s.contains("\"ok\":false"));
        assert!(s.contains("\"id\":42"));
        assert!(s.contains("\"error\":\"no_system\""));
        assert!(s.contains("\"fatal\":false"));
    }
}
