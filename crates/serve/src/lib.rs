//! # kpa-serve — a concurrent model-checking service
//!
//! A long-running process that answers knowledge/probability queries
//! over TCP, built entirely from in-repo parts: [`ModelArtifact`]s
//! from `kpa-logic` for shared immutable models, `ShardMap` from
//! `kpa-assign` for the cross-session artifact cache, and
//! [`Scope`]d metrics from `kpa-trace` for per-session and
//! process-wide statistics. No external dependencies — including the
//! JSON layer, which is this crate's own strict parser/writer
//! ([`json`]).
//!
//! ## Protocol (schema v1)
//!
//! Line-delimited JSON: one request object per `\n`-terminated line,
//! one response line per request, `"v": 1` on every request. See
//! [`proto`] for the op table, the error-code vocabulary, and the
//! fatal/recoverable split; DESIGN.md §3.2g is the prose version.
//!
//! ```text
//! → {"v":1,"op":"load","system":"secret-coin","assignment":"post"}
//! ← {"ok":true,"op":"load","agents":["p1","p2","p3"],...}
//! → {"v":1,"op":"query","queries":[{"kind":"holds","formula":"K[p3] c=h","point":[0,0,1]}]}
//! ← {"ok":true,"op":"query","results":[{"holds":true,"id":0}]}
//! ```
//!
//! Point sets travel as the underlying bitset words in hex — the
//! encoding that makes "server answer == local answer" a *bit*
//! identity, which `tests/serve_differential.rs` exercises with
//! concurrent clients against serial evaluation.
//!
//! ## Layers
//!
//! - [`json`] — strict, zero-dep JSON parse/serialize
//! - [`proto`] — typed schema v1 requests/responses/errors
//! - [`catalog`] — the named-system registry (shared with
//!   `kpa-explore`) and structural spec systems
//! - [`session`] — per-connection state, query evaluation, metrics
//! - [`server`] — TCP accept loop, framing, limits, shutdown
//! - [`client`] — the blocking client the CLI, tests, and soak bench
//!   share
//!
//! ## Quick start
//!
//! ```
//! use kpa_serve::{Client, ServeConfig, Server};
//!
//! let mut server = Server::bind(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.hello().unwrap();
//! client.load_named("secret-coin", "post").unwrap();
//! let results = client
//!     .query(&[kpa_serve::QueryItem {
//!         id: 1,
//!         kind: kpa_serve::QueryKind::Everywhere {
//!             formula: "c=h | !c=h".into(),
//!         },
//!     }])
//!     .unwrap();
//! assert_eq!(results.len(), 1);
//! client.bye().unwrap();
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod client;
pub mod json;
pub mod proto;
pub mod server;
pub mod session;

pub use catalog::{SpecRound, SystemSpec, SYSTEMS};
pub use client::{Client, ClientError};
pub use proto::{QueryItem, QueryKind, PROTO_VERSION};
pub use server::{ServeConfig, Server};
pub use session::{standard_alphas, SharedState};

// Re-export the pieces the doc examples above mention.
#[doc(no_inline)]
pub use kpa_logic::ModelArtifact;
#[doc(no_inline)]
pub use kpa_trace::Scope;
