//! A small blocking client for the kpa-serve protocol.
//!
//! Shared by `kpa-explore --connect`, the loopback differential and
//! protocol-fuzz suites, and the soak bench — one implementation of
//! framing and error handling, so a protocol change breaks loudly in
//! one place.
//!
//! The client is deliberately synchronous: send one line, read one
//! line. Pipelining exists on the wire (the server processes every
//! complete line it has), but the tests want strict request/response
//! pairing to compare against serial evaluation.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::catalog::SystemSpec;
use crate::json::Value;
use crate::proto::{query_item_to_value, spec_to_value, QueryItem, PROTO_VERSION};

/// Client-side failure: transport trouble, an unparseable reply, or a
/// structured error frame from the server.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read timeouts).
    Io(std::io::Error),
    /// The server's reply line was not a valid frame.
    Malformed(String),
    /// The server answered with an error frame.
    Server {
        /// Stable error code (see [`crate::proto::codes`]).
        code: String,
        /// Human-readable detail.
        message: String,
        /// Whether the server closed the connection afterwards.
        fatal: bool,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed reply: {m}"),
            ClientError::Server {
                code,
                message,
                fatal,
            } => write!(
                f,
                "server error {code}{}: {message}",
                if *fatal { " (fatal)" } else { "" }
            ),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connected client. Each request allocates the next `id`
/// automatically and checks that the reply echoes it.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    acc: Vec<u8>,
    next_id: i64,
    read_deadline: Duration,
}

impl Client {
    /// Connects with a 30-second per-reply deadline.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure I/O errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with_deadline(addr, Duration::from_secs(30))
    }

    /// Connects with an explicit per-reply deadline (tests reading
    /// "no reply should come" use a short one).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure I/O errors.
    pub fn connect_with_deadline(
        addr: impl ToSocketAddrs,
        deadline: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(25)))?;
        Ok(Client {
            stream,
            acc: Vec::new(),
            next_id: 1,
            read_deadline: deadline,
        })
    }

    /// Sends raw bytes followed by a newline — the fuzz suite's way of
    /// putting arbitrary garbage on the wire.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw(&mut self, line: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(line)?;
        self.stream.write_all(b"\n")?;
        Ok(())
    }

    /// Sends raw bytes with **no** trailing newline (truncated-frame
    /// fuzzing).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_unterminated(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Reads the next reply frame, whatever its `ok` flag.
    ///
    /// # Errors
    ///
    /// `Io` on timeout/EOF, `Malformed` when the line is not a JSON
    /// object.
    pub fn recv_frame(&mut self) -> Result<Value, ClientError> {
        let start = Instant::now();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.acc.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.acc.drain(..=pos).collect();
                let text = std::str::from_utf8(&line[..pos])
                    .map_err(|_| ClientError::Malformed("reply is not UTF-8".into()))?;
                return crate::json::parse(text).map_err(|e| ClientError::Malformed(e.to_string()));
            }
            if start.elapsed() > self.read_deadline {
                return Err(ClientError::Io(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "no reply within deadline",
                )));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ClientError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                Ok(n) => self.acc.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// One request/response round trip: sends the fields (plus `v`,
    /// `op`, and a fresh `id`), reads the reply, and converts error
    /// frames into [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Transport, malformed-reply, and server-error failures.
    pub fn request(&mut self, op: &str, fields: Vec<(&str, Value)>) -> Result<Value, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut all = vec![
            ("v", Value::Int(PROTO_VERSION)),
            ("op", Value::Str(op.to_string())),
            ("id", Value::Int(id)),
        ];
        all.extend(fields);
        let mut m = std::collections::BTreeMap::new();
        for (k, v) in all {
            m.insert(k.to_string(), v);
        }
        let line = Value::Obj(m).to_json();
        self.send_raw(line.as_bytes())?;
        let frame = self.recv_frame()?;
        match frame.get("ok").and_then(Value::as_bool) {
            Some(true) => {
                if frame.get("id").and_then(Value::as_int) != Some(id) {
                    return Err(ClientError::Malformed(format!(
                        "reply did not echo id {id}: {}",
                        frame.to_json()
                    )));
                }
                Ok(frame)
            }
            Some(false) => Err(ClientError::Server {
                code: frame
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                message: frame
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                fatal: frame.get("fatal").and_then(Value::as_bool).unwrap_or(false),
            }),
            None => Err(ClientError::Malformed(format!(
                "reply has no \"ok\" flag: {}",
                frame.to_json()
            ))),
        }
    }

    /// `hello` handshake; returns the server's frame.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn hello(&mut self) -> Result<Value, ClientError> {
        self.request("hello", vec![])
    }

    /// Pins a catalog system (`name[:param]`) with an assignment spec.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn load_named(&mut self, system: &str, assignment: &str) -> Result<Value, ClientError> {
        self.request(
            "load",
            vec![
                ("system", Value::Str(system.to_string())),
                ("assignment", Value::Str(assignment.to_string())),
            ],
        )
    }

    /// Pins a structural-spec system with an assignment spec.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn load_spec(&mut self, spec: &SystemSpec, assignment: &str) -> Result<Value, ClientError> {
        self.request(
            "load",
            vec![
                ("spec", spec_to_value(spec)),
                ("assignment", Value::Str(assignment.to_string())),
            ],
        )
    }

    /// Submits a query batch; returns the `results` array.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus `Malformed` when `results` is
    /// missing.
    pub fn query(&mut self, items: &[QueryItem]) -> Result<Vec<Value>, ClientError> {
        let frame = self.request(
            "query",
            vec![(
                "queries",
                Value::Arr(items.iter().map(query_item_to_value).collect()),
            )],
        )?;
        frame
            .get("results")
            .and_then(Value::as_arr)
            .map(<[Value]>::to_vec)
            .ok_or_else(|| ClientError::Malformed("query reply lacks \"results\"".into()))
    }

    /// Fetches per-session and process-wide stats.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.request("stats", vec![])
    }

    /// Fetches the schema-v2 telemetry snapshot (cumulative +
    /// windowed histograms, top span sites, artifact-cache occupancy).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.request("metrics", vec![])
    }

    /// Fetches the metrics text exposition (`name value` lines).
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus `Malformed` when `text` is
    /// missing.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let frame = self.request("metrics", vec![("format", Value::Str("text".into()))])?;
        frame
            .get("text")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Malformed("metrics reply lacks \"text\"".into()))
    }

    /// Unpins the session's model.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn unload(&mut self) -> Result<Value, ClientError> {
        self.request("unload", vec![])
    }

    /// Says goodbye; the server closes the connection after replying.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn bye(&mut self) -> Result<Value, ClientError> {
        self.request("bye", vec![])
    }

    /// Builds a bare request object (for tests that want to mutate a
    /// frame before sending it).
    #[must_use]
    pub fn bare_request(op: &str, fields: Vec<(&str, Value)>) -> Value {
        let mut all = vec![
            ("v", Value::Int(PROTO_VERSION)),
            ("op", Value::Str(op.to_string())),
        ];
        all.extend(fields);
        obj_dyn(all)
    }
}

fn obj_dyn(fields: Vec<(&str, Value)>) -> Value {
    let mut m = std::collections::BTreeMap::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Obj(m)
}
