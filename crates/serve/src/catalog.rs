//! The system catalog: every named system a server (or `kpa-explore`)
//! can load, plus the `spec`-built protocol systems used by the
//! differential suites.
//!
//! A *system spec* is the textual form `name[:param]` — `ca1:4` is the
//! 4-messenger coordinated attack, `async-coins:6` the 6-toss system.
//! The catalog lives here (not in the CLI) so the service's `load`
//! op, `kpa-explore`, and the loopback tests all resolve names
//! through one table.
//!
//! Random-system differentials need systems no name denotes; for
//! those the protocol's `load` op accepts a structural `spec` object
//! (agents, adversaries, clockless mask, coin rounds), built by
//! [`build_spec_system`]. The shape mirrors the property-test
//! generator in `tests/common`, so a test can hand the server exactly
//! the system it just built locally.

use kpa_assign::Assignment;
use kpa_measure::Rat;
use kpa_protocols as protocols;
use kpa_system::{PointId, ProtocolBuilder, System, TreeId};

/// The built-in system registry: name, description, default parameter.
pub const SYSTEMS: &[(&str, &str, usize)] = &[
    (
        "secret-coin",
        "p3 tosses a fair coin only it observes (introduction)",
        0,
    ),
    (
        "vardi",
        "input bit selects a fair or 2/3-biased coin (section 3)",
        0,
    ),
    (
        "footnote5",
        "the factored action-a system (section 3, footnote 5)",
        0,
    ),
    (
        "die",
        "a fair die observed by p1; p3 learns low/high (section 5)",
        0,
    ),
    (
        "ca1",
        "coordinated attack CA1 with <param> messengers (section 4)",
        10,
    ),
    (
        "ca2",
        "coordinated attack CA2 with <param> messengers (section 4)",
        10,
    ),
    (
        "ca1-adaptive",
        "the adaptive CA1 of section 8 with <param> messengers",
        10,
    ),
    (
        "async-coins",
        "<param> fair tosses; p1 clockless (section 7)",
        4,
    ),
    (
        "biased",
        "the 99/100-biased two-run system (end of section 7)",
        0,
    ),
    (
        "aces1",
        "Freund's two aces, reveal-spade protocol (appendix B.1)",
        0,
    ),
    (
        "aces2",
        "Freund's two aces, random-suit protocol (appendix B.1)",
        0,
    ),
    (
        "primality",
        "witness sampling for n=561 and n=13, <param> rounds",
        3,
    ),
];

/// Builds the system `spec` names (`name[:param]`).
///
/// # Errors
///
/// Unknown names, malformed parameters, and builder failures are
/// reported as human-readable strings (the CLI prints them verbatim;
/// the server wraps them in an `unknown_system` error frame).
pub fn build_system(spec: &str) -> Result<System, String> {
    let (name, param) = match spec.split_once(':') {
        Some((n, p)) => {
            let param = p
                .parse::<usize>()
                .map_err(|_| format!("bad parameter {p:?}"))?;
            (n, Some(param))
        }
        None => (spec, None),
    };
    let default = SYSTEMS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, d)| *d)
        .ok_or_else(|| format!("unknown system {name:?}; try --list"))?;
    let p = param.unwrap_or(default);
    let half = Rat::new(1, 2);
    let sys = match name {
        "secret-coin" => protocols::secret_coin(),
        "vardi" => protocols::vardi_system(),
        "footnote5" => protocols::footnote5_factored(),
        "die" => protocols::die_system(),
        "ca1" => protocols::ca1(p.max(1) as u32, half),
        "ca2" => protocols::ca2(p.max(1) as u32, half),
        "ca1-adaptive" => protocols::ca1_adaptive(p.max(1) as u32, half),
        "async-coins" => protocols::async_coin_tosses(p.max(1)),
        "biased" => protocols::biased_two_run(),
        "aces1" => protocols::aces_protocol1(),
        "aces2" => protocols::aces_protocol2(),
        "primality" => protocols::primality_system(&[561, 13], p.max(1) as u32),
        _ => unreachable!("validated above"),
    };
    sys.map_err(|e| e.to_string())
}

/// One coin round of a structural system spec: a biased coin
/// `c<k>` observed by the agents whose bit is set in `observers`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecRound {
    /// Probability of heads, as an exact rational.
    pub bias: Rat,
    /// Bitmask over agent indices: agent `a` observes the coin iff
    /// bit `a` is set.
    pub observers: u8,
}

/// A structural system spec: the protocol-level description of a
/// random test system (the wire shape of the `load` op's `spec`
/// object).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemSpec {
    /// Number of agents (named `p1..pN`).
    pub agents: usize,
    /// Whether to add the two-adversary tree pair (`adv0`/`adv1`,
    /// seen by the first agent).
    pub two_adversaries: bool,
    /// Bitmask of clockless (asynchronous) agents.
    pub clockless_mask: u8,
    /// The coin rounds, in order.
    pub rounds: Vec<SpecRound>,
}

/// Maximum sizes accepted from the wire, so a client cannot ask the
/// server to materialize an enormous system.
pub const SPEC_MAX_AGENTS: usize = 6;
/// Maximum coin rounds accepted in a wire spec.
pub const SPEC_MAX_ROUNDS: usize = 6;

/// Builds the system a structural spec describes. Round `k` tosses
/// coin `c<k>`; propositions `c<k>=h` / `c<k>=t` are sticky.
///
/// # Errors
///
/// Rejects empty/oversized specs and non-probability biases before
/// building; builder errors are forwarded as strings.
pub fn build_spec_system(spec: &SystemSpec) -> Result<System, String> {
    if spec.agents == 0 || spec.agents > SPEC_MAX_AGENTS {
        return Err(format!(
            "spec.agents must be 1..={SPEC_MAX_AGENTS}, got {}",
            spec.agents
        ));
    }
    if spec.rounds.is_empty() || spec.rounds.len() > SPEC_MAX_ROUNDS {
        return Err(format!(
            "spec.rounds must have 1..={SPEC_MAX_ROUNDS} rounds, got {}",
            spec.rounds.len()
        ));
    }
    let names: Vec<String> = (0..spec.agents).map(|a| format!("p{}", a + 1)).collect();
    let mut b = ProtocolBuilder::new(names.clone());
    for (a, name) in names.iter().enumerate() {
        if spec.clockless_mask & (1 << a) != 0 {
            b = b.clockless(name);
        }
    }
    if spec.two_adversaries {
        b = b.adversaries_seen_by(&["adv0", "adv1"], &[&names[0]]);
    }
    for (k, round) in spec.rounds.iter().enumerate() {
        if !round.bias.is_probability() {
            return Err(format!("round {k}: bias {} is not in [0, 1]", round.bias));
        }
        let observers: Vec<&str> = names
            .iter()
            .enumerate()
            .filter(|(a, _)| round.observers & (1 << a) != 0)
            .map(|(_, n)| n.as_str())
            .collect();
        b = b.coin(
            &format!("c{k}"),
            &[("h", round.bias), ("t", Rat::ONE - round.bias)],
            &observers,
        );
    }
    b.build().map_err(|e| e.to_string())
}

/// Resolves an assignment spec (`post`, `fut`, `prior`, `opp:<agent>`)
/// against a system.
///
/// # Errors
///
/// Unknown shapes and unknown agent names are reported as strings.
pub fn build_assignment(spec: &str, sys: &System) -> Result<Assignment, String> {
    match spec {
        "post" => Ok(Assignment::post()),
        "fut" => Ok(Assignment::fut()),
        "prior" => Ok(Assignment::prior()),
        other => match other.strip_prefix("opp:") {
            Some(name) => sys
                .agent_id(name)
                .map(Assignment::opp)
                .ok_or_else(|| format!("unknown agent {name:?}")),
            None => Err(format!(
                "unknown assignment {other:?}; use post, fut, prior, or opp:<agent>"
            )),
        },
    }
}

/// Parses and validates a `tree,run,time` point reference.
///
/// # Errors
///
/// Malformed triples and out-of-range components are reported as
/// strings.
pub fn parse_point(spec: &str, sys: &System) -> Result<PointId, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("expected tree,run,time; got {spec:?}"));
    }
    let parse = |s: &str| {
        s.trim()
            .parse::<usize>()
            .map_err(|_| format!("bad number {s:?}"))
    };
    point_in(sys, parse(parts[0])?, parse(parts[1])?, parse(parts[2])?)
}

/// Validates a `(tree, run, time)` triple against a system's shape.
///
/// # Errors
///
/// Out-of-range components are reported as strings.
pub fn point_in(sys: &System, tree: usize, run: usize, time: usize) -> Result<PointId, String> {
    if tree >= sys.tree_count() {
        return Err(format!("tree {tree} out of range (< {})", sys.tree_count()));
    }
    let t = sys.tree(TreeId(tree));
    if run >= t.runs().len() {
        return Err(format!("run {run} out of range (< {})", t.runs().len()));
    }
    if time > sys.horizon() {
        return Err(format!("time {time} out of range (<= {})", sys.horizon()));
    }
    Ok(PointId {
        tree: TreeId(tree),
        run,
        time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_every_system() {
        for (name, _, _) in SYSTEMS {
            assert!(build_system(name).is_ok(), "{name} failed to build");
        }
        assert!(build_system("ca1:2").is_ok());
        assert!(build_system("async-coins:3").is_ok());
        assert!(build_system("nope").is_err());
        assert!(build_system("ca1:x").is_err());
    }

    #[test]
    fn assignment_and_point_parsing() {
        let sys = build_system("secret-coin").unwrap();
        assert!(build_assignment("post", &sys).is_ok());
        assert!(build_assignment("fut", &sys).is_ok());
        assert!(build_assignment("prior", &sys).is_ok());
        assert!(build_assignment("opp:p3", &sys).is_ok());
        assert!(build_assignment("opp:nobody", &sys).is_err());
        assert!(build_assignment("bogus", &sys).is_err());
        assert!(parse_point("0,0,1", &sys).is_ok());
        assert!(parse_point("9,0,1", &sys).is_err());
        assert!(parse_point("0,9,1", &sys).is_err());
        assert!(parse_point("0,0,9", &sys).is_err());
        assert!(parse_point("0,0", &sys).is_err());
    }

    #[test]
    fn spec_systems_build_and_validate() {
        let spec = SystemSpec {
            agents: 2,
            two_adversaries: true,
            clockless_mask: 1,
            rounds: vec![
                SpecRound {
                    bias: Rat::new(1, 3),
                    observers: 0b01,
                },
                SpecRound {
                    bias: Rat::new(1, 2),
                    observers: 0b10,
                },
            ],
        };
        let sys = build_spec_system(&spec).unwrap();
        assert_eq!(sys.agent_count(), 2);
        assert!(sys.prop_id("c0=h").is_some());
        assert!(sys.prop_id("c1=h").is_some());
        assert!(!sys.is_synchronous());

        let mut bad = spec.clone();
        bad.agents = 0;
        assert!(build_spec_system(&bad).is_err());
        bad.agents = SPEC_MAX_AGENTS + 1;
        assert!(build_spec_system(&bad).is_err());
        let mut bad = spec.clone();
        bad.rounds.clear();
        assert!(build_spec_system(&bad).is_err());
        let mut bad = spec;
        bad.rounds[0].bias = Rat::new(3, 2);
        assert!(build_spec_system(&bad).is_err());
    }
}
