//! A minimal, strict, zero-dependency JSON tree: the value type both
//! sides of the wire protocol build and inspect, a recursive-descent
//! parser hardened for adversarial input (depth-limited, strict
//! UTF-8/escape/number grammar), and a deterministic writer that
//! reuses [`kpa_trace::json_escape`]'s serialization rules — object
//! keys are sorted (`BTreeMap` order), so encoding the same value
//! always yields the same bytes.
//!
//! This module exists because the workspace is hermetic: no `serde`,
//! no `serde_json`. The grammar implemented is RFC 8259 JSON with two
//! deliberate narrowings, both fine for a machine protocol:
//!
//! * numbers are either 64-bit signed integers or finite `f64`s —
//!   integers that overflow `i64` and literals like `1e999` are
//!   rejected rather than silently rounded;
//! * nesting beyond [`MAX_DEPTH`] is rejected, so a fuzzer's
//!   `[[[[[…` cannot overflow the parse stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum container nesting the parser accepts. Protocol frames are
/// at most ~4 levels deep; 64 leaves headroom while keeping stack use
/// bounded under fuzzing.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional or exponent part, within `i64`.
    Int(i64),
    /// Any other finite number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` so writing is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// A convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The `&str` inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The `i64` inside, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The `bool` inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The slice inside, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The map inside, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Member `key` of this object (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|o| o.get(key))
    }

    /// Serialize to compact single-line JSON (no interior newlines —
    /// the framing invariant of the line-delimited protocol).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) => {
                // Finite by construction; `{x:?}` keeps a trailing
                // `.0` on integral floats so the value round-trips as
                // a float.
                out.push_str(&format!("{x:?}"));
            }
            Value::Str(s) => out.push_str(&kpa_trace::json_escape(s)),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&kpa_trace::json_escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds an object value from `(key, value)` pairs.
pub fn obj<const N: usize>(pairs: [(&str, Value); N]) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            // Duplicate keys: last wins (same as most parsers); the
            // protocol never sends duplicates.
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require the paired
                                // low surrogate escape.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character. The input is a
                    // `&str`, so slicing at the next char boundary is
                    // always valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("unterminated \\u escape"))?;
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + nibble;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run (RFC 8259
        // forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            return match text.parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                Err(_) => Err(self.err("integer out of range")),
            };
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Float(x)),
            _ => Err(self.err("number out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shaped_values() {
        let src = r#"{"v":1,"op":"query","batch":[{"id":7,"kind":"sat","formula":"K{p1} c=h"}],"flag":true,"x":null,"r":0.5}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("v").and_then(Value::as_int), Some(1));
        assert_eq!(v.get("op").and_then(Value::as_str), Some("query"));
        let batch = v.get("batch").and_then(Value::as_arr).unwrap();
        assert_eq!(batch[0].get("id").and_then(Value::as_int), Some(7));
        assert_eq!(v.get("r"), Some(&Value::Float(0.5)));
        // Writing and re-parsing is the identity on the tree.
        let re = parse(&v.to_json()).unwrap();
        assert_eq!(re, v);
        // And the writer is deterministic.
        assert_eq!(v.to_json(), re.to_json());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = parse(r#""a\"b\\c\n\tAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tAé😀"));
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert!(parse(r#""\ud800""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udc00""#).is_err(), "lone low surrogate");
        assert!(parse("\"\u{1}\"").is_err(), "raw control character");
        assert!(parse(r#""\q""#).is_err(), "unknown escape");
    }

    #[test]
    fn numbers_are_strict() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("0.25").unwrap(), Value::Float(0.25));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert!(parse("01").is_err(), "leading zero");
        assert!(parse("1.").is_err(), "dangling decimal point");
        assert!(parse("1e").is_err(), "dangling exponent");
        assert!(parse("99999999999999999999").is_err(), "i64 overflow");
        assert!(parse("1e999").is_err(), "f64 overflow");
        assert!(parse("NaN").is_err());
    }

    #[test]
    fn malformed_input_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "]",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{,}",
            "tru",
            "nul",
            "\"abc",
            "{\"a\":1,}",
            "1 2",
            "{\"a\":1}x",
            "--1",
            "+1",
            "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
        // Depth bombing hits the limit, not the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_builder_sorts_keys() {
        let v = obj([("z", Value::Int(1)), ("a", Value::Bool(false))]);
        assert_eq!(v.to_json(), r#"{"a":false,"z":1}"#);
    }
}
