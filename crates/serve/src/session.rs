//! Per-connection session state and request execution.
//!
//! A *session* is what one connection accumulates: a pinned model
//! (after a successful `load`) and an always-on [`Scope`] of metrics.
//! Sessions execute decoded [`Request`]s against shared process
//! state and produce wire frames; they know nothing about sockets —
//! the server layer owns framing and timeouts, the loopback tests
//! drive sessions through real sockets, and the unit tests here
//! drive them directly.
//!
//! # Artifact sharing
//!
//! Models are expensive to build and cheap to share: `load` resolves
//! its `(system, assignment)` pair to a canonical key and consults a
//! process-wide [`ShardMap`] of [`ModelArtifact`]s. Two sessions
//! pinning the same pair share one artifact — and therefore one set
//! of warmed memo tables; the differential suite leans on this to
//! check that memo sharing never changes answers. Artifacts are built
//! *outside* the shard lock (first insert wins), matching the map's
//! contract.
//!
//! # Batch semantics
//!
//! A `query` batch is all-or-nothing: items are validated and
//! evaluated in order, and the first failure turns the whole frame
//! into one recoverable error naming the offending item. Partial
//! results never ship — a client that sees `"ok": true` may assume
//! every item evaluated.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kpa_assign::ShardMap;
use kpa_logic::{parse_in, ModelArtifact};
use kpa_measure::Rat;
use kpa_system::{PointId, System, TreeId};
use kpa_trace::Scope;

use crate::catalog;
use crate::json::{obj, Value};
use crate::proto::{codes, ok_frame, words_to_value, Envelope, ProtoError, QueryKind, Request};

/// Process-wide state shared by every session of one server.
#[derive(Debug)]
pub struct SharedState {
    /// The artifact cache: canonical `(system, assignment)` key →
    /// shared immutable model.
    artifacts: ShardMap<String, Arc<ModelArtifact>>,
    /// Process-wide metrics (always on, unlike the `KPA_TRACE`-gated
    /// global registry).
    proc: Scope,
    /// Session id allocator.
    next_session: AtomicU64,
}

impl SharedState {
    /// Fresh shared state for one server instance.
    #[must_use]
    pub fn new() -> SharedState {
        SharedState {
            artifacts: ShardMap::new("serve.artifacts"),
            proc: Scope::new("kpa-serve.process"),
            next_session: AtomicU64::new(1),
        }
    }

    /// The process-wide metric scope.
    #[must_use]
    pub fn proc(&self) -> &Scope {
        &self.proc
    }

    /// Number of distinct artifacts resident in the cache — the
    /// `serve.artifacts_resident` gauge. The cache never evicts, so
    /// resident == built-so-far.
    #[must_use]
    pub fn artifact_count(&self) -> usize {
        self.artifacts.len()
    }

    /// Approximate bytes held by resident artifacts (point sets plus
    /// memo tables, via [`ModelArtifact::approx_resident_bytes`]) —
    /// the `serve.artifacts_resident_bytes` gauge. A point-in-time
    /// fold over the cache; diagnostics, not a ledger.
    #[must_use]
    pub fn artifacts_resident_bytes(&self) -> u64 {
        self.artifacts.fold(0u64, |acc, _key, artifact| {
            acc + artifact.approx_resident_bytes()
        })
    }

    /// Builds a catalog system into the artifact cache ahead of any
    /// client (`kpa-serve --preload`), returning the canonical key it
    /// is resident under. Uses the same key scheme as `load`, so the
    /// first client to pin the pair scores a cache hit.
    ///
    /// # Errors
    ///
    /// Unknown catalog names, bad assignment specs, and evaluation
    /// failures while warming the all-points set, as strings.
    pub fn preload(&self, system: &str, assignment: &str) -> Result<String, String> {
        let sys = catalog::build_system(system)?;
        let assign = catalog::build_assignment(assignment, &sys)?;
        let key = format!("name:{system};assign:{assignment}");
        let artifact = self.artifact(&key, sys, assign);
        artifact
            .ctx()
            .sat(&kpa_logic::Formula::True)
            .map_err(|e| e.to_string())?;
        Ok(key)
    }

    /// Resolve-or-build an artifact for a canonical key.
    fn artifact(
        &self,
        key: &str,
        sys: System,
        assignment: kpa_assign::Assignment,
    ) -> Arc<ModelArtifact> {
        if let Some(a) = self.artifacts.get(&key.to_string()) {
            self.proc.counter("proc.artifact_hits").add(1);
            return a;
        }
        self.proc.counter("proc.artifact_builds").add(1);
        let built = Arc::new(ModelArtifact::new(Arc::new(sys), assignment));
        self.artifacts.insert_or_get(key.to_string(), built)
    }
}

impl Default for SharedState {
    fn default() -> Self {
        SharedState::new()
    }
}

/// A pinned model: the artifact plus the key it was resolved from.
#[derive(Debug, Clone)]
struct Pinned {
    key: String,
    artifact: Arc<ModelArtifact>,
}

/// What the server should do with the connection after a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum After {
    /// Keep reading frames.
    Continue,
    /// Close the connection (clean `bye` or a fatal error).
    Close,
}

/// One connection's protocol state.
#[derive(Debug)]
pub struct Session {
    /// Monotonic per-server session id (1-based).
    id: u64,
    scope: Scope,
    pinned: Option<Pinned>,
    shared: Arc<SharedState>,
}

impl Session {
    /// Opens a session against shared server state.
    #[must_use]
    pub fn open(shared: Arc<SharedState>) -> Session {
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        shared.proc.counter("proc.sessions").add(1);
        Session {
            id,
            scope: Scope::new(format!("kpa-serve.session.{id}")),
            pinned: None,
            shared,
        }
    }

    /// This session's id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This session's metric scope (the server records frame
    /// latencies into it).
    #[must_use]
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Executes one decoded request, returning the response frame and
    /// what to do with the connection afterwards. Errors are returned
    /// as frames too — the caller never sees a `Result`.
    pub fn handle(&mut self, env: &Envelope) -> (Value, After) {
        self.scope.counter("session.requests").add(1);
        self.shared.proc.counter("proc.requests").add(1);
        let outcome = self.dispatch(env);
        match outcome {
            Ok(frame) => {
                let after = if matches!(env.req, Request::Bye) {
                    After::Close
                } else {
                    After::Continue
                };
                (frame, after)
            }
            Err(e) => {
                self.scope.counter("session.errors").add(1);
                self.shared.proc.counter("proc.errors").add(1);
                let after = if e.fatal {
                    After::Close
                } else {
                    After::Continue
                };
                (e.frame(env.id), after)
            }
        }
    }

    fn dispatch(&mut self, env: &Envelope) -> Result<Value, ProtoError> {
        match &env.req {
            Request::Hello => Ok(ok_frame(
                "hello",
                env.id,
                vec![
                    ("proto", Value::Int(crate::proto::PROTO_VERSION)),
                    (
                        "server",
                        Value::Str(format!("kpa-serve/{}", env!("CARGO_PKG_VERSION"))),
                    ),
                    ("session", Value::Int(self.id as i64)),
                ],
            )),
            Request::Load {
                system,
                spec,
                assignment,
            } => self.load(env.id, system.as_deref(), spec.as_ref(), assignment),
            Request::Query { items } => self.query(env.id, items),
            Request::Stats => Ok(self.stats(env.id)),
            Request::Metrics { text } => Ok(self.metrics(env.id, *text)),
            Request::Unload => {
                self.pinned = None;
                Ok(ok_frame("unload", env.id, vec![]))
            }
            Request::Bye => Ok(ok_frame("bye", env.id, vec![])),
        }
    }

    fn load(
        &mut self,
        id: Option<i64>,
        system: Option<&str>,
        spec: Option<&catalog::SystemSpec>,
        assignment: &str,
    ) -> Result<Value, ProtoError> {
        let (key_sys, sys) = match (system, spec) {
            (Some(name), None) => {
                let sys = catalog::build_system(name)
                    .map_err(|m| ProtoError::recoverable(codes::UNKNOWN_SYSTEM, m))?;
                (format!("name:{name}"), sys)
            }
            (None, Some(spec)) => {
                let sys = catalog::build_spec_system(spec)
                    .map_err(|m| ProtoError::recoverable(codes::UNKNOWN_SYSTEM, m))?;
                (
                    format!("spec:{}", crate::proto::spec_to_value(spec).to_json()),
                    sys,
                )
            }
            // decode() enforces exactly-one; unreachable over the wire.
            _ => {
                return Err(ProtoError::recoverable(
                    codes::BAD_REQUEST,
                    "load takes exactly one of \"system\" or \"spec\"",
                ))
            }
        };
        let assign = catalog::build_assignment(assignment, &sys).map_err(|m| {
            let code = if assignment.starts_with("opp:") {
                codes::UNKNOWN_AGENT
            } else {
                codes::BAD_REQUEST
            };
            ProtoError::recoverable(code, m)
        })?;
        let key = format!("{key_sys};assign:{assignment}");
        let agents: Vec<Value> = (0..sys.agent_count())
            .map(|a| Value::Str(sys.agent_name(kpa_system::AgentId(a)).to_string()))
            .collect();
        let trees = sys.tree_count();
        let horizon = sys.horizon();
        let artifact = self.shared.artifact(&key, sys, assign);
        let points = artifact
            .ctx()
            .sat(&kpa_logic::Formula::True)
            .map_err(|e| ProtoError::recoverable(codes::EVAL_ERROR, e.to_string()))?;
        self.scope.counter("session.loads").add(1);
        self.pinned = Some(Pinned {
            key: key.clone(),
            artifact,
        });
        Ok(ok_frame(
            "load",
            id,
            vec![
                ("key", Value::Str(key)),
                ("agents", Value::Arr(agents)),
                ("trees", Value::Int(trees as i64)),
                ("horizon", Value::Int(horizon as i64)),
                ("points", Value::Int(points.len() as i64)),
                ("words", Value::Int(points.as_words().len() as i64)),
            ],
        ))
    }

    fn query(
        &mut self,
        id: Option<i64>,
        items: &[crate::proto::QueryItem],
    ) -> Result<Value, ProtoError> {
        let pinned = self.pinned.as_ref().ok_or_else(|| {
            ProtoError::recoverable(codes::NO_SYSTEM, "no model pinned; send a \"load\" first")
        })?;
        let artifact = Arc::clone(&pinned.artifact);
        let sys = artifact.system();
        let ctx = artifact.ctx();
        // Hand the server-minted frame trace id (ambient on this
        // thread) to the evaluation context, so spans recorded deep in
        // the kernel stitch into this request's tree.
        ctx.set_trace_id(kpa_trace::current_trace_id());
        self.scope.record("session.batch_len", items.len() as u64);
        let start = std::time::Instant::now();
        let mut rows = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            let row = eval_item(&ctx, sys, &item.kind).map_err(|e| ProtoError {
                message: format!("query[{index}] (id {}): {}", item.id, e.message),
                ..e
            })?;
            let mut fields = vec![("id", Value::Int(item.id))];
            fields.extend(row);
            rows.push(obj_from(fields));
        }
        let elapsed = start.elapsed().as_nanos() as u64;
        self.scope.record_windowed("session.query_ns", elapsed);
        self.shared.proc.record_windowed("proc.query_ns", elapsed);
        self.scope
            .counter("session.queries")
            .add(items.len() as u64);
        self.shared
            .proc
            .counter("proc.queries")
            .add(items.len() as u64);
        Ok(ok_frame("query", id, vec![("results", Value::Arr(rows))]))
    }

    fn stats(&self, id: Option<i64>) -> Value {
        let pinned = match &self.pinned {
            Some(p) => Value::Str(p.key.clone()),
            None => Value::Null,
        };
        let queries = self
            .pinned
            .as_ref()
            .map(|p| p.artifact.ctx().queries())
            .unwrap_or(0);
        ok_frame(
            "stats",
            id,
            vec![
                ("session", report_value(&self.scope.snapshot())),
                ("process", report_value(&self.shared.proc.snapshot())),
                ("artifacts", Value::Int(self.shared.artifact_count() as i64)),
                ("pinned", pinned),
                ("ctx_queries", Value::Int(queries as i64)),
            ],
        )
    }

    /// The schema-v2 telemetry snapshot: cumulative + windowed metric
    /// reports, the top span sites (global, populated only under
    /// `KPA_TRACE=1`), and artifact-cache occupancy gauges. With
    /// `text` the same data is flattened into `name value` exposition
    /// lines for scraping.
    fn metrics(&self, id: Option<i64>, text: bool) -> Value {
        let session = self.scope.snapshot();
        let process = self.shared.proc.snapshot();
        let (records, dropped) = kpa_trace::snapshot_span_records();
        let sites = kpa_trace::span_site_stats(&records);
        let resident = self.shared.artifact_count() as u64;
        let resident_bytes = self.shared.artifacts_resident_bytes();
        if text {
            let body = exposition(&process, &sites, dropped, resident, resident_bytes);
            return ok_frame(
                "metrics",
                id,
                vec![
                    ("schema", Value::Int(2)),
                    ("format", Value::Str("text".into())),
                    ("text", Value::Str(body)),
                ],
            );
        }
        let top_sites: Value = Value::Obj(
            sites
                .iter()
                .take(TOP_SPAN_SITES)
                .map(|s| {
                    (
                        s.site.to_string(),
                        obj([
                            ("count", Value::Int(s.count as i64)),
                            ("total_ns", Value::Int(s.total_ns as i64)),
                            ("max_ns", Value::Int(s.max_ns as i64)),
                        ]),
                    )
                })
                .collect(),
        );
        ok_frame(
            "metrics",
            id,
            vec![
                ("schema", Value::Int(2)),
                ("session", report_value(&session)),
                ("process", report_value(&process)),
                (
                    "spans",
                    obj([
                        ("dropped", Value::Int(dropped as i64)),
                        ("sites", top_sites),
                    ]),
                ),
                ("artifacts_resident", Value::Int(resident as i64)),
                (
                    "artifacts_resident_bytes",
                    Value::Int(resident_bytes as i64),
                ),
            ],
        )
    }
}

/// How many span sites the structured `metrics` frame carries (the
/// hottest by total time; the text exposition carries them all).
const TOP_SPAN_SITES: usize = 8;

/// Flattens the process report into scrape-friendly `name value`
/// lines: counters verbatim, cumulative histograms as
/// `hist.<name>.{count,p50,p99}`, windowed ones as
/// `win.<name>.{count,p50,p99}`, span sites as
/// `span.<site>.{count,total_ns,max_ns}`, plus the occupancy gauges.
fn exposition(
    report: &kpa_trace::TraceReport,
    sites: &[kpa_trace::SpanSiteStat],
    spans_dropped: u64,
    resident: u64,
    resident_bytes: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "serve.artifacts_resident {resident}");
    let _ = writeln!(out, "serve.artifacts_resident_bytes {resident_bytes}");
    for (name, v) in &report.counters {
        let _ = writeln!(out, "counter.{name} {v}");
    }
    for (name, h) in &report.histograms {
        let _ = writeln!(out, "hist.{name}.count {}", h.count);
        let _ = writeln!(out, "hist.{name}.p50 {}", h.p50().unwrap_or(0));
        let _ = writeln!(out, "hist.{name}.p99 {}", h.p99().unwrap_or(0));
    }
    for (name, w) in &report.windowed {
        let _ = writeln!(out, "win.{name}.count {}", w.count);
        let _ = writeln!(out, "win.{name}.p50 {}", w.p50.unwrap_or(0));
        let _ = writeln!(out, "win.{name}.p99 {}", w.p99.unwrap_or(0));
    }
    let _ = writeln!(out, "spans.dropped {spans_dropped}");
    for s in sites {
        let _ = writeln!(out, "span.{}.count {}", s.site, s.count);
        let _ = writeln!(out, "span.{}.total_ns {}", s.site, s.total_ns);
        let _ = writeln!(out, "span.{}.max_ns {}", s.site, s.max_ns);
    }
    out
}

impl Drop for Session {
    fn drop(&mut self) {
        self.shared.proc.counter("proc.sessions_closed").add(1);
    }
}

fn obj_from(fields: Vec<(&str, Value)>) -> Value {
    let mut m = std::collections::BTreeMap::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Obj(m)
}

/// Renders a [`kpa_trace::TraceReport`] as a wire value: counters
/// verbatim, histograms as `{count, min, max, p50, p99}` rows (the
/// p50/p99 are log₂-bucket floors — deterministic lower bounds), and
/// windowed histograms as `{count, sum, p50, p99}` over the last
/// rolling window.
#[must_use]
pub fn report_value(report: &kpa_trace::TraceReport) -> Value {
    let counters = Value::Obj(
        report
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::Int(*v as i64)))
            .collect(),
    );
    let histograms = Value::Obj(
        report
            .histograms
            .iter()
            .map(|(k, h)| {
                let opt = |o: Option<u64>| match o {
                    Some(v) => Value::Int(v as i64),
                    None => Value::Null,
                };
                (
                    k.clone(),
                    obj([
                        ("count", Value::Int(h.count as i64)),
                        ("min", opt(h.min)),
                        ("max", opt(h.max)),
                        ("p50", opt(h.p50())),
                        ("p99", opt(h.p99())),
                    ]),
                )
            })
            .collect(),
    );
    let opt = |o: Option<u64>| match o {
        Some(v) => Value::Int(v as i64),
        None => Value::Null,
    };
    let windowed = Value::Obj(
        report
            .windowed
            .iter()
            .map(|(k, w)| {
                (
                    k.clone(),
                    obj([
                        ("count", Value::Int(w.count as i64)),
                        ("sum", Value::Int(w.sum as i64)),
                        ("p50", opt(w.p50)),
                        ("p99", opt(w.p99)),
                    ]),
                )
            })
            .collect(),
    );
    obj([
        ("counters", counters),
        ("histograms", histograms),
        ("windowed", windowed),
    ])
}

/// Evaluates one query item, returning its result fields (without the
/// echoed id).
fn eval_item(
    ctx: &kpa_logic::EvalCtx<'_>,
    sys: &Arc<System>,
    kind: &QueryKind,
) -> Result<Vec<(&'static str, Value)>, ProtoError> {
    let parse = |src: &str| {
        parse_in(src, sys).map_err(|e| ProtoError::recoverable(codes::PARSE_ERROR, e.to_string()))
    };
    let agent_id = |name: &str| {
        sys.agent_id(name).ok_or_else(|| {
            ProtoError::recoverable(codes::UNKNOWN_AGENT, format!("unknown agent {name:?}"))
        })
    };
    let point = |p: (usize, usize, usize)| {
        catalog::point_in(sys, p.0, p.1, p.2)
            .map_err(|m| ProtoError::recoverable(codes::BAD_REQUEST, m))
    };
    let eval = |e: kpa_logic::LogicError| ProtoError::recoverable(codes::EVAL_ERROR, e.to_string());
    match kind {
        QueryKind::Sat { formula } => {
            let set = ctx.sat(&parse(formula)?).map_err(eval)?;
            Ok(vec![
                ("count", Value::Int(set.len() as i64)),
                ("words", words_to_value(set.as_words())),
            ])
        }
        QueryKind::Holds { formula, point: p } => {
            let holds = ctx.holds_at(&parse(formula)?, point(*p)?).map_err(eval)?;
            Ok(vec![("holds", Value::Bool(holds))])
        }
        QueryKind::Everywhere { formula } => {
            let holds = ctx.holds_everywhere(&parse(formula)?).map_err(eval)?;
            Ok(vec![("holds", Value::Bool(holds))])
        }
        QueryKind::Knows { agent, formula } => {
            let sat = ctx.sat(&parse(formula)?).map_err(eval)?;
            let set = ctx.knows_set(agent_id(agent)?, &sat);
            Ok(vec![
                ("count", Value::Int(set.len() as i64)),
                ("words", words_to_value(set.as_words())),
            ])
        }
        QueryKind::PrGe {
            agent,
            alpha,
            formula,
        } => {
            let sat = ctx.sat(&parse(formula)?).map_err(eval)?;
            let set = ctx
                .pr_ge_set(agent_id(agent)?, *alpha, &sat)
                .map_err(eval)?;
            Ok(vec![
                ("count", Value::Int(set.len() as i64)),
                ("words", words_to_value(set.as_words())),
            ])
        }
        QueryKind::PrGeFamily {
            agent,
            alphas,
            formula,
        } => {
            let sets = ctx
                .pr_ge_family(agent_id(agent)?, alphas, &parse(formula)?)
                .map_err(eval)?;
            let counts = sets.iter().map(|s| Value::Int(s.len() as i64)).collect();
            let words = sets.iter().map(|s| words_to_value(s.as_words())).collect();
            Ok(vec![
                ("counts", Value::Arr(counts)),
                ("sets", Value::Arr(words)),
            ])
        }
        QueryKind::Interval {
            agent,
            point: p,
            formula,
        } => {
            let f = parse(formula)?;
            let (lo, hi) = ctx
                .prob_interval(agent_id(agent)?, point(*p)?, &f)
                .map_err(eval)?;
            Ok(vec![
                ("lo", Value::Str(lo.to_string())),
                ("hi", Value::Str(hi.to_string())),
            ])
        }
    }
}

/// Validates a `(tree, run, time)` triple (re-exported for the server
/// and tests).
#[allow(dead_code)]
fn point_id(tree: usize, run: usize, time: usize) -> PointId {
    PointId {
        tree: TreeId(tree),
        run,
        time,
    }
}

/// Convenience: the threshold family `{0, 1/4, 1/2, 3/4, 1}` the soak
/// bench and tests sweep.
#[must_use]
pub fn standard_alphas() -> Vec<Rat> {
    vec![
        Rat::ZERO,
        Rat::new(1, 4),
        Rat::new(1, 2),
        Rat::new(3, 4),
        Rat::ONE,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse as jparse;
    use crate::proto::{decode, QueryItem};

    fn env(line: &str) -> Envelope {
        decode(&jparse(line).unwrap(), 64).unwrap()
    }

    fn session() -> Session {
        Session::open(Arc::new(SharedState::new()))
    }

    #[test]
    fn query_before_load_is_no_system() {
        let mut s = session();
        let (frame, after) = s.handle(&env(
            r#"{"v":1,"op":"query","queries":[{"kind":"sat","formula":"c=h"}]}"#,
        ));
        assert_eq!(after, After::Continue);
        assert!(frame.to_json().contains("\"error\":\"no_system\""));
    }

    #[test]
    fn load_then_query_round_trip() {
        let mut s = session();
        let (frame, _) = s.handle(&env(
            r#"{"v":1,"op":"load","system":"secret-coin","assignment":"post"}"#,
        ));
        let text = frame.to_json();
        assert!(text.contains("\"ok\":true"), "{text}");
        assert!(text.contains("\"agents\":[\"p1\",\"p2\",\"p3\"]"), "{text}");

        let (frame, after) = s.handle(&env(r#"{"v":1,"op":"query","id":5,"queries":[
                {"id":1,"kind":"sat","formula":"c=h"},
                {"id":2,"kind":"holds","formula":"K{p3} c=h","point":[0,0,1]},
                {"id":3,"kind":"everywhere","formula":"c=h | !c=h"},
                {"id":4,"kind":"knows","agent":"p3","formula":"c=h"},
                {"id":5,"kind":"pr_ge","agent":"p1","alpha":"1/2","formula":"c=h"},
                {"id":6,"kind":"interval","agent":"p1","point":[0,0,1],"formula":"c=h"}
            ]}"#));
        assert_eq!(after, After::Continue);
        let text = frame.to_json();
        assert!(text.contains("\"ok\":true"), "{text}");
        assert!(text.contains("\"id\":5"), "{text}");
        assert!(text.contains("\"holds\":true"), "{text}");
        assert!(text.contains("\"lo\":\"1/2\""), "{text}");
        assert!(text.contains("\"hi\":\"1/2\""), "{text}");
    }

    #[test]
    fn pr_ge_family_matches_serial_pr_ge() {
        let mut s = session();
        s.handle(&env(
            r#"{"v":1,"op":"load","system":"secret-coin","assignment":"post"}"#,
        ));
        let (frame, _) = s.handle(&env(
            r#"{"v":1,"op":"query","queries":[{"kind":"pr_ge_family","agent":"p1","alphas":["1/4","1/2","3/4","1"],"formula":"c=h"}]}"#,
        ));
        let family = frame.to_json();
        assert!(family.contains("\"ok\":true"), "{family}");
        assert!(family.contains("\"counts\":["), "{family}");
        for alpha in ["1/4", "1/2", "3/4", "1"] {
            let (frame, _) = s.handle(&env(&format!(
                r#"{{"v":1,"op":"query","queries":[{{"kind":"pr_ge","agent":"p1","alpha":"{alpha}","formula":"c=h"}}]}}"#,
            )));
            let serial = frame.to_json();
            // The serial frame's word array must appear verbatim in the
            // family frame's `sets` — bit-identical payloads.
            let words = serial
                .split("\"words\":")
                .nth(1)
                .and_then(|rest| rest.split(']').next())
                .map(|w| format!("{w}]"))
                .expect("serial pr_ge frame carries words");
            assert!(family.contains(&words), "{family} missing {words}");
        }
    }

    #[test]
    fn artifacts_are_shared_between_sessions() {
        let shared = Arc::new(SharedState::new());
        let mut a = Session::open(Arc::clone(&shared));
        let mut b = Session::open(Arc::clone(&shared));
        let line = r#"{"v":1,"op":"load","system":"die","assignment":"post"}"#;
        a.handle(&env(line));
        b.handle(&env(line));
        assert_eq!(shared.artifact_count(), 1);
        assert_eq!(shared.proc().counter("proc.artifact_builds").get(), 1);
        assert_eq!(shared.proc().counter("proc.artifact_hits").get(), 1);
    }

    #[test]
    fn recoverable_errors_keep_the_session() {
        let mut s = session();
        s.handle(&env(
            r#"{"v":1,"op":"load","system":"secret-coin","assignment":"post"}"#,
        ));
        for (line, code) in [
            (
                r#"{"v":1,"op":"query","queries":[{"kind":"sat","formula":"(("}]}"#,
                "parse_error",
            ),
            (
                r#"{"v":1,"op":"query","queries":[{"kind":"knows","agent":"zz","formula":"c=h"}]}"#,
                "unknown_agent",
            ),
            (
                r#"{"v":1,"op":"query","queries":[{"kind":"holds","formula":"c=h","point":[9,0,0]}]}"#,
                "bad_request",
            ),
            (
                r#"{"v":1,"op":"load","system":"nope","assignment":"post"}"#,
                "unknown_system",
            ),
            (
                r#"{"v":1,"op":"load","system":"die","assignment":"opp:zz"}"#,
                "unknown_agent",
            ),
        ] {
            let (frame, after) = s.handle(&env(line));
            assert_eq!(after, After::Continue, "{line}");
            let text = frame.to_json();
            assert!(text.contains(&format!("\"error\":\"{code}\"")), "{text}");
        }
        // The pinned model survived all of that.
        let (frame, _) = s.handle(&env(
            r#"{"v":1,"op":"query","queries":[{"kind":"sat","formula":"c=h"}]}"#,
        ));
        assert!(frame.to_json().contains("\"ok\":true"));
    }

    #[test]
    fn stats_report_scoped_metrics() {
        let mut s = session();
        s.handle(&env(
            r#"{"v":1,"op":"load","system":"secret-coin","assignment":"post"}"#,
        ));
        s.handle(&env(
            r#"{"v":1,"op":"query","queries":[{"kind":"sat","formula":"c=h"}]}"#,
        ));
        let (frame, _) = s.handle(&env(r#"{"v":1,"op":"stats"}"#));
        let text = frame.to_json();
        assert!(text.contains("\"session.queries\":1"), "{text}");
        assert!(text.contains("\"session.loads\":1"), "{text}");
        assert!(text.contains("\"session.query_ns\""), "{text}");
        assert!(text.contains("\"p50\""), "{text}");
        assert!(text.contains("\"p99\""), "{text}");
        assert!(text.contains("\"artifacts\":1"), "{text}");
    }

    #[test]
    fn metrics_reports_schema_v2() {
        let mut s = session();
        s.handle(&env(
            r#"{"v":1,"op":"load","system":"secret-coin","assignment":"post"}"#,
        ));
        s.handle(&env(
            r#"{"v":1,"op":"query","queries":[{"kind":"sat","formula":"c=h"}]}"#,
        ));
        let (frame, after) = s.handle(&env(r#"{"v":1,"op":"metrics","id":9}"#));
        assert_eq!(after, After::Continue);
        let text = frame.to_json();
        assert!(text.contains("\"ok\":true"), "{text}");
        assert!(text.contains("\"id\":9"), "{text}");
        assert!(text.contains("\"schema\":2"), "{text}");
        assert!(text.contains("\"windowed\""), "{text}");
        // Rolling recording fed the window: the query just ran, so
        // proc.query_ns has in-window samples with quantiles.
        assert!(text.contains("\"proc.query_ns\":{\"count\":1"), "{text}");
        assert!(text.contains("\"spans\":{\"dropped\":"), "{text}");
        assert!(text.contains("\"artifacts_resident\":1"), "{text}");
        assert!(text.contains("\"artifacts_resident_bytes\":"), "{text}");

        let (frame, _) = s.handle(&env(r#"{"v":1,"op":"metrics","format":"text"}"#));
        let text = frame.to_json();
        assert!(text.contains("\"format\":\"text\""), "{text}");
        assert!(text.contains("serve.artifacts_resident 1"), "{text}");
        assert!(text.contains("win.proc.query_ns.count 1"), "{text}");
        assert!(text.contains("counter.proc.queries 1"), "{text}");
    }

    #[test]
    fn preload_warms_the_artifact_cache() {
        let shared = Arc::new(SharedState::new());
        let key = shared.preload("die", "post").expect("preload die");
        assert_eq!(key, "name:die;assign:post");
        assert_eq!(shared.artifact_count(), 1);
        assert!(shared.artifacts_resident_bytes() > 0);
        // The first client load of the same pair is a cache hit.
        let mut s = Session::open(Arc::clone(&shared));
        let (frame, _) = s.handle(&env(
            r#"{"v":1,"op":"load","system":"die","assignment":"post"}"#,
        ));
        assert!(frame.to_json().contains("\"ok\":true"));
        assert_eq!(shared.proc().counter("proc.artifact_hits").get(), 1);
        assert_eq!(shared.proc().counter("proc.artifact_builds").get(), 1);
        // Unknown systems and assignments are reported, not built.
        assert!(shared.preload("nope", "post").is_err());
        assert!(shared.preload("die", "opp:zz").is_err());
        assert_eq!(shared.artifact_count(), 1);
    }

    #[test]
    fn batches_are_all_or_nothing() {
        let mut s = session();
        s.handle(&env(
            r#"{"v":1,"op":"load","system":"secret-coin","assignment":"post"}"#,
        ));
        let before_queries = s.scope().counter("session.queries").get();
        let (frame, _) = s.handle(&env(r#"{"v":1,"op":"query","queries":[
                {"kind":"sat","formula":"c=h"},
                {"kind":"sat","formula":"(("}
            ]}"#));
        let text = frame.to_json();
        assert!(text.contains("\"ok\":false"), "{text}");
        assert!(text.contains("query[1]"), "{text}");
        assert_eq!(s.scope().counter("session.queries").get(), before_queries);
    }

    #[test]
    fn spec_load_matches_local_build() {
        let spec = catalog::SystemSpec {
            agents: 2,
            two_adversaries: false,
            clockless_mask: 0,
            rounds: vec![catalog::SpecRound {
                bias: Rat::new(1, 2),
                observers: 0b01,
            }],
        };
        let mut s = session();
        let line = format!(
            r#"{{"v":1,"op":"load","spec":{},"assignment":"post"}}"#,
            crate::proto::spec_to_value(&spec).to_json()
        );
        let (frame, _) = s.handle(&env(&line));
        assert!(
            frame.to_json().contains("\"ok\":true"),
            "{}",
            frame.to_json()
        );
        let (frame, _) = s.handle(&env(
            r#"{"v":1,"op":"query","queries":[{"kind":"sat","formula":"c0=h"}]}"#,
        ));
        let text = frame.to_json();
        // Compare against a locally built artifact, bit for bit.
        let sys = catalog::build_spec_system(&spec).unwrap();
        let local = ModelArtifact::new(Arc::new(sys), kpa_assign::Assignment::post());
        let set = local
            .ctx()
            .sat(&parse_in("c0=h", local.system()).unwrap())
            .unwrap();
        let expected = words_to_value(set.as_words()).to_json();
        assert!(text.contains(&expected), "{text} vs {expected}");
    }

    #[test]
    fn standard_alphas_are_probabilities() {
        for a in standard_alphas() {
            assert!(a.is_probability());
        }
        let _ = QueryItem {
            id: 0,
            kind: QueryKind::Sat {
                formula: "x".into(),
            },
        };
    }
}
