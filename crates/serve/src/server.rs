//! The TCP server: listener, per-connection framing, limits, and
//! clean shutdown.
//!
//! # Threading model
//!
//! One nonblocking accept loop (polled, so shutdown never blocks on
//! `accept`) plus one thread per live connection. Connections are
//! bounded by [`ServeConfig::max_conns`]; a connection over the limit
//! receives a fatal `server_busy` frame and is closed immediately,
//! rather than queueing invisibly.
//!
//! # Framing
//!
//! Requests are read with a bounded incremental scanner — bytes are
//! pulled in small chunks and scanned for `\n`, so a client that
//! streams an endless line is cut off at [`ServeConfig::max_frame`]
//! with a fatal `frame_too_long` frame instead of growing the buffer
//! without bound. Several complete lines arriving in one read are all
//! processed, in order (pipelining is allowed). Each received frame is
//! assigned a server-minted trace id, echoed as `trace_id` on its
//! reply and installed as the handling thread's ambient span id while
//! `KPA_TRACE=1` — the hook that stitches kernel spans into
//! per-request trees.
//!
//! # Timeouts and shutdown
//!
//! Sockets are read with a short poll timeout; each wakeup checks the
//! idle clock (fatal `idle_timeout` after [`ServeConfig::idle_timeout`]
//! of silence) and the server's stop flag (fatal `shutting_down`).
//! [`Server::shutdown`] flips the flag, joins the accept loop, then
//! joins every connection thread — so when it returns, no server
//! thread is running and every client has seen either its reply or a
//! structured goodbye.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json;
use crate::proto::{codes, decode, ProtoError};
use crate::session::{After, Session, SharedState};

/// Tunables for one server instance. `Default` is suitable for tests
/// and local exploration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Maximum simultaneous connections; the next one is refused with
    /// `server_busy`.
    pub max_conns: usize,
    /// Maximum request-line length in bytes (fatal `frame_too_long`
    /// beyond it).
    pub max_frame: usize,
    /// Maximum items in one `query` batch.
    pub max_batch: usize,
    /// Idle time after which a silent connection is reaped with
    /// `idle_timeout`.
    pub idle_timeout: Duration,
    /// Poll granularity for reads, idle checks, and shutdown checks.
    pub poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_conns: 64,
            max_frame: 1 << 20,
            max_batch: 1024,
            idle_timeout: Duration::from_secs(300),
            poll: Duration::from_millis(25),
        }
    }
}

/// A running server: owns the accept loop and every connection
/// thread. Dropping without [`Server::shutdown`] detaches the threads
/// (they exit on the stop flag once something wakes them); tests and
/// the binary always call `shutdown`.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<SharedState>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration I/O errors.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(SharedState::new());
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        let accept = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let config = config.clone();
            std::thread::Builder::new()
                .name("kpa-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &config, &shared, &stop, &conns, &active))
                .expect("spawn accept loop")
        };

        Ok(Server {
            local_addr,
            shared,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (with the real port when `:0` was asked).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The process-wide state (artifact cache + metrics) — the soak
    /// bench and the binary report from here.
    #[must_use]
    pub fn shared(&self) -> &Arc<SharedState> {
        &self.shared
    }

    /// Stops accepting, notifies every live connection, and joins all
    /// server threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.conns.lock().expect("conns");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    config: &ServeConfig,
    shared: &Arc<SharedState>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    active: &Arc<AtomicUsize>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if active.load(Ordering::SeqCst) >= config.max_conns {
                    shared.proc().counter("proc.conns_refused").add(1);
                    refuse(stream);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                shared.proc().counter("proc.conns_opened").add(1);
                let shared = Arc::clone(shared);
                let stop = Arc::clone(stop);
                let active = Arc::clone(active);
                let config = config.clone();
                let handle = std::thread::Builder::new()
                    .name("kpa-serve-conn".to_string())
                    .spawn(move || {
                        serve_connection(stream, &config, &shared, &stop);
                        active.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection thread");
                let mut guard = conns.lock().expect("conns");
                // Reap finished threads so the handle list stays
                // proportional to live connections, not history.
                guard.retain(|h| !h.is_finished());
                guard.push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Refuse an over-limit connection with a structured goodbye.
fn refuse(mut stream: TcpStream) {
    let e = ProtoError::fatal(codes::SERVER_BUSY, "connection limit reached");
    let mut line = e.frame(None).to_json();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

/// Sends one frame; `false` means the peer is gone.
fn send(stream: &mut TcpStream, frame: &json::Value) -> bool {
    let mut line = frame.to_json();
    line.push('\n');
    stream.write_all(line.as_bytes()).is_ok()
}

fn serve_connection(
    mut stream: TcpStream,
    config: &ServeConfig,
    shared: &Arc<SharedState>,
    stop: &Arc<AtomicBool>,
) {
    if stream.set_read_timeout(Some(config.poll)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut session = Session::open(Arc::clone(shared));
    let frame_ns = session.scope().histogram("session.frame_ns");
    let frame_win = session.scope().rolling("session.frame_ns");
    let proc_frame_ns = shared.proc().histogram("proc.frame_ns");
    let proc_frame_win = shared.proc().rolling("proc.frame_ns");

    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();

    loop {
        if stop.load(Ordering::SeqCst) {
            let e = ProtoError::fatal(codes::SHUTTING_DOWN, "server is shutting down");
            let _ = send(&mut stream, &e.frame(None));
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed (possibly mid-batch; nothing to do)
            Ok(n) => {
                last_activity = Instant::now();
                acc.extend_from_slice(&chunk[..n]);
                // Handle every complete line in the buffer (pipelining).
                while let Some(pos) = acc.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = acc.drain(..=pos).collect();
                    // Every frame gets a server-minted trace id: it is
                    // echoed on the reply for correlation, and (while
                    // KPA_TRACE=1) installed as the thread's ambient
                    // id so every span under this frame stitches into
                    // one request tree.
                    let trace_id = kpa_trace::next_trace_id();
                    let _req = kpa_trace::ambient_guard(trace_id);
                    let started = Instant::now();
                    let done =
                        handle_line(&line[..pos], &mut stream, &mut session, config, trace_id);
                    let ns = started.elapsed().as_nanos() as u64;
                    frame_ns.record(ns);
                    frame_win.record(ns);
                    proc_frame_ns.record(ns);
                    proc_frame_win.record(ns);
                    if done {
                        return;
                    }
                }
                if acc.len() > config.max_frame {
                    let e = ProtoError::fatal(
                        codes::FRAME_TOO_LONG,
                        format!(
                            "request line exceeds {} bytes without a newline",
                            config.max_frame
                        ),
                    );
                    let _ = send(&mut stream, &e.frame(None));
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if last_activity.elapsed() >= config.idle_timeout {
                    shared.proc().counter("proc.idle_reaped").add(1);
                    let e = ProtoError::fatal(codes::IDLE_TIMEOUT, "connection idle too long");
                    let _ = send(&mut stream, &e.frame(None));
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Stamps the frame's correlating `trace_id` (16 hex digits) before it
/// goes on the wire. Every reply to a received frame carries one —
/// success and error alike; only connection-level notices sent with no
/// request in flight (busy/idle/shutdown) go untagged.
fn tag(mut frame: json::Value, trace_id: kpa_trace::TraceId) -> json::Value {
    if let json::Value::Obj(m) = &mut frame {
        m.insert("trace_id".to_string(), json::Value::Str(trace_id.to_hex()));
    }
    frame
}

/// Processes one request line; `true` means the connection is done.
fn handle_line(
    raw: &[u8],
    stream: &mut TcpStream,
    session: &mut Session,
    config: &ServeConfig,
    trace_id: kpa_trace::TraceId,
) -> bool {
    // Tolerate CRLF clients and skip blank keepalive lines.
    let raw = if raw.last() == Some(&b'\r') {
        &raw[..raw.len() - 1]
    } else {
        raw
    };
    if raw.is_empty() {
        return false;
    }
    let text = match std::str::from_utf8(raw) {
        Ok(t) => t,
        Err(_) => {
            let e = ProtoError::fatal(codes::BAD_JSON, "request line is not UTF-8");
            let _ = send(stream, &tag(e.frame(None), trace_id));
            return true;
        }
    };
    let value = match json::parse(text) {
        Ok(v) => v,
        Err(err) => {
            let e = ProtoError::fatal(codes::BAD_JSON, err.to_string());
            let _ = send(stream, &tag(e.frame(None), trace_id));
            return true;
        }
    };
    let env = match decode(&value, config.max_batch) {
        Ok(env) => env,
        Err(e) => {
            let id = value.get("id").and_then(json::Value::as_int);
            let _ = send(stream, &tag(e.frame(id), trace_id));
            return e.fatal;
        }
    };
    let (frame, after) = session.handle(&env);
    if !send(stream, &tag(frame, trace_id)) {
        return true;
    }
    after == After::Close
}
