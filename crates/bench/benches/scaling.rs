//! Engine scaling benchmarks: how the core operations grow with system
//! size — the engineering-side "figures" of this reproduction. Plain
//! `main()` harness timed with `std::time`; run with
//! `cargo bench -p kpa-bench --bench scaling` (`--features bench` for
//! the larger sweep sizes).

use kpa_assign::{Assignment, ProbAssignment};
use kpa_bench::{bench_time, default_reps};
use kpa_betting::{BetRule, BettingGame};
use kpa_logic::Model;
use kpa_measure::Rat;
use kpa_protocols::{async_coin_tosses, ca2, coordination_formula, recent_heads};
use kpa_system::AgentId;

/// Building the n-toss asynchronous system (2^n runs).
fn bench_system_construction(reps: u32) {
    let sizes: &[usize] = if cfg!(feature = "bench") {
        &[4, 6, 8, 10, 12]
    } else {
        &[4, 6, 8, 10]
    };
    for &n in sizes {
        bench_time(&format!("scale_system_construction/{n}"), reps, || {
            async_coin_tosses(n).expect("builds")
        });
    }
}

/// Inducing posterior probability spaces and taking inner measures of a
/// nonmeasurable fact over the whole system.
fn bench_assignment_induction(reps: u32) {
    for n in [4usize, 6, 8] {
        let sys = async_coin_tosses(n).expect("builds");
        let phi = recent_heads(&sys);
        bench_time(&format!("scale_assignment_induction/{n}"), reps, || {
            let post = ProbAssignment::new(&sys, Assignment::post());
            let mut acc = Rat::ZERO;
            for c in sys.points() {
                acc += post.inner(AgentId(0), c, &phi).expect("space builds");
            }
            acc
        });
    }
}

/// Model checking probabilistic common knowledge of coordination on
/// CA2 with growing messenger counts (tree depth stays fixed; the
/// quantities change, the point structure does not — so this measures
/// the fixed-point machinery).
fn bench_common_knowledge(reps: u32) {
    for m in [2u32, 6, 10] {
        let sys = ca2(m, Rat::new(1, 2)).expect("builds");
        let g = [sys.agent_id("A").unwrap(), sys.agent_id("B").unwrap()];
        let spec = coordination_formula().common_alpha(g, Rat::new(9, 10));
        bench_time(&format!("scale_common_knowledge/{m}"), reps, || {
            let post = ProbAssignment::new(&sys, Assignment::post());
            let model = Model::new(&post);
            model.holds_everywhere(&spec).expect("model checks")
        });
    }
}

/// Deciding bet safety (Theorem 7's game side) across a whole system.
fn bench_safety_decision(reps: u32) {
    for n in [4usize, 6, 8] {
        let sys = async_coin_tosses(n).expect("builds");
        let phi = recent_heads(&sys);
        bench_time(&format!("scale_safety_decision/{n}"), reps, || {
            let game = BettingGame::new(&sys, AgentId(0), AgentId(1));
            let rule = BetRule::new(phi.clone(), Rat::new(1, 2)).expect("valid");
            game.safe_points(&rule).expect("decidable")
        });
    }
}

/// The `kpa-pool` thread sweep: the same safety decision at 1, 2, and 4
/// threads on the 11k-point system (2^10 runs × 11 times), with the
/// verdict sets asserted bit-identical across thread counts. Wall-clock
/// per thread count is printed so the speedup curve lands next to the
/// size curves above.
fn bench_parallel_safety(reps: u32) {
    let n = if cfg!(feature = "bench") { 10 } else { 8 };
    let sys = async_coin_tosses(n).expect("builds");
    let phi = recent_heads(&sys);
    let run = || {
        let game = BettingGame::new(&sys, AgentId(0), AgentId(1));
        let rule = BetRule::new(phi.clone(), Rat::new(1, 2)).expect("valid");
        game.safe_points(&rule).expect("decidable")
    };
    let baseline = kpa_pool::with_threads(1, run);
    for threads in [1usize, 2, 4] {
        let d = kpa_pool::with_threads(threads, || {
            bench_time(
                &format!("scale_parallel_safety/{n}/threads={threads}"),
                reps,
                &run,
            )
        });
        let verdicts = kpa_pool::with_threads(threads, run);
        assert_eq!(
            verdicts, baseline,
            "safety verdicts must be bit-identical at {threads} threads"
        );
        let _ = d;
    }
}

fn main() {
    let reps = default_reps();
    println!("scaling benchmarks (best of {reps})\n");
    bench_system_construction(reps);
    bench_assignment_induction(reps);
    bench_common_knowledge(reps);
    bench_safety_decision(reps);
    bench_parallel_safety(reps);
}
