//! Engine scaling benchmarks: how the core operations grow with system
//! size — the engineering-side "figures" of this reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpa_assign::{Assignment, ProbAssignment};
use kpa_betting::{BetRule, BettingGame};
use kpa_logic::Model;
use kpa_measure::Rat;
use kpa_protocols::{async_coin_tosses, ca2, coordination_formula, recent_heads};
use kpa_system::AgentId;
use std::hint::black_box;

/// Building the n-toss asynchronous system (2^n runs).
fn bench_system_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_system_construction");
    group.sample_size(10);
    for n in [4usize, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(async_coin_tosses(n).expect("builds")));
        });
    }
    group.finish();
}

/// Inducing posterior probability spaces and taking inner measures of a
/// nonmeasurable fact over the whole system.
fn bench_assignment_induction(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_assignment_induction");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let sys = async_coin_tosses(n).expect("builds");
        let phi = recent_heads(&sys);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let post = ProbAssignment::new(&sys, Assignment::post());
                let mut acc = Rat::ZERO;
                for c in sys.points() {
                    acc += post.inner(AgentId(0), c, &phi).expect("space builds");
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

/// Model checking probabilistic common knowledge of coordination on
/// CA2 with growing messenger counts (tree depth stays fixed; the
/// quantities change, the point structure does not — so this measures
/// the fixed-point machinery).
fn bench_common_knowledge(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_common_knowledge");
    group.sample_size(10);
    for m in [2u32, 6, 10] {
        let sys = ca2(m, Rat::new(1, 2)).expect("builds");
        let g = [sys.agent_id("A").unwrap(), sys.agent_id("B").unwrap()];
        let spec = coordination_formula().common_alpha(g, Rat::new(9, 10));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let post = ProbAssignment::new(&sys, Assignment::post());
                let model = Model::new(&post);
                black_box(model.holds_everywhere(&spec).expect("model checks"))
            });
        });
    }
    group.finish();
}

/// Deciding bet safety (Theorem 7's game side) across a whole system.
fn bench_safety_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_safety_decision");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let sys = async_coin_tosses(n).expect("builds");
        let phi = recent_heads(&sys);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let game = BettingGame::new(&sys, AgentId(0), AgentId(1));
                let rule = BetRule::new(phi.clone(), Rat::new(1, 2)).expect("valid");
                black_box(game.safe_points(&rule).expect("decidable"))
            });
        });
    }
    group.finish();
}

criterion_group!(
    scaling,
    bench_system_construction,
    bench_assignment_induction,
    bench_common_knowledge,
    bench_safety_decision
);
criterion_main!(scaling);
