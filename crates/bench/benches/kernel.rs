//! Micro-benchmark of the dense `PointSet` kernel.
//!
//! Pits the word-wise `Model::sat` evaluator against an independent
//! reference evaluator that computes the same Section 5 semantics over
//! `BTreeSet<PointId>` — the representation the engine used before the
//! kernel refactor. Outputs are asserted identical on the paper's
//! walkthrough systems, and the timed comparison runs on an
//! asynchronous coin system with > 10⁴ points, where the bitset path
//! is required to be at least 2× faster.
//!
//! A second timed section pins the `kpa-pool` parallel sweeps: the same
//! probability-heavy formula is model checked at 1 thread and at 4
//! threads on the 11k-point system, the outputs are asserted
//! bit-identical, and the 4-thread pass is required to be ≥ 1.5×
//! faster.
//!
//! A third timed section pins the dense *measure* kernel: the fused
//! word-masked `measure_interval` of `DensePointSpace` against the
//! generic element-at-a-time scan of the same spaces (required ≥ 2×
//! faster single-threaded), and the `Pr_i ≥ α` threshold family as k
//! serial tree-walk sweeps vs one batched `pr_ge_family` call through
//! the hash-consed formula DAG (required ≥ 2× faster).
//!
//! A fourth timed section pins the batched sample plan: the same
//! memoized `Pr_i ≥ α` threshold family with the per-agent
//! `SamplePlan` off (the unplanned per-point extraction path) vs on
//! (one table lookup per point), single-threaded; the planned sweep is
//! required to be ≥ 2× faster — the speedup the `Pr` memo alone could
//! not deliver while every point re-extracted its sample.
//!
//! After the timed sections, a traced pass re-runs each row's workload
//! once under `kpa-trace` and asserts — via the kernel fallback
//! counters — that the dense rows actually exercised the dense path.
//! Each traced row's wall time also feeds the `bench.row_ns` rolling
//! window, so the exported trace report exercises the schema-v2
//! `windowed` and `spans` sections end to end.
//!
//! Run with `cargo bench -p kpa-bench --bench kernel`. Set
//! `KPA_BENCH_JSON=BENCH_5.json` (or use `scripts/bench.sh`) to emit
//! the rows as machine-readable JSON, and `KPA_TRACE_JSON=TRACE_10.json`
//! to emit the traced pass's counter report.

use kpa_assign::{Assignment, ProbAssignment};
use kpa_logic::{Formula, Model};
use kpa_measure::{rat, Rat};
use kpa_protocols::{async_coin_tosses, ca1, secret_coin};
use kpa_system::{AgentId, PointId, System};
use std::collections::BTreeSet;

/// Reference evaluator: the paper's satisfaction relation, computed
/// point-by-point over `BTreeSet<PointId>`. Covers the fragment the
/// benchmark and the identity checks use (everything except the
/// common-knowledge fixed points).
fn reference_sat(sys: &System, pa: &ProbAssignment<'_>, f: &Formula) -> BTreeSet<PointId> {
    match f {
        Formula::True => sys.points().collect(),
        Formula::Prop(name) => {
            let id = sys.prop_id(name).expect("known proposition");
            sys.points().filter(|&p| sys.holds(id, p)).collect()
        }
        Formula::Not(x) => {
            let s = reference_sat(sys, pa, x);
            sys.points().filter(|p| !s.contains(p)).collect()
        }
        Formula::And(xs) => {
            let mut acc: BTreeSet<PointId> = sys.points().collect();
            for x in xs {
                let s = reference_sat(sys, pa, x);
                acc.retain(|p| s.contains(p));
            }
            acc
        }
        Formula::Or(xs) => {
            let mut acc = BTreeSet::new();
            for x in xs {
                acc.extend(reference_sat(sys, pa, x));
            }
            acc
        }
        Formula::Knows(i, x) => {
            let s = reference_sat(sys, pa, x);
            sys.points()
                .filter(|&c| sys.indistinguishable(*i, c).iter().all(|d| s.contains(&d)))
                .collect()
        }
        Formula::PrGe(i, alpha, x) => {
            let s = reference_sat(sys, pa, x);
            sys.points()
                .filter(|&c| pa.inner(*i, c, &s).expect("space builds") >= *alpha)
                .collect()
        }
        Formula::Next(x) => {
            let s = reference_sat(sys, pa, x);
            let succ = |p: &PointId| PointId {
                tree: p.tree,
                run: p.run,
                time: p.time + 1,
            };
            sys.points()
                .filter(|p| p.time < sys.horizon() && s.contains(&succ(p)))
                .collect()
        }
        Formula::Until(x, y) => {
            let hold = reference_sat(sys, pa, x);
            let goal = reference_sat(sys, pa, y);
            let succ = |p: &PointId| PointId {
                tree: p.tree,
                run: p.run,
                time: p.time + 1,
            };
            let mut acc = goal;
            loop {
                let next: BTreeSet<PointId> = sys
                    .points()
                    .filter(|p| {
                        acc.contains(p)
                            || (hold.contains(p)
                                && p.time < sys.horizon()
                                && acc.contains(&succ(p)))
                    })
                    .collect();
                if next == acc {
                    break acc;
                }
                acc = next;
            }
        }
        _ => panic!("reference evaluator: unsupported fragment {f:?}"),
    }
}

/// Asserts that the kernel evaluator and the reference evaluator agree
/// on `f` over `sys`.
fn check_identical(sys: &System, f: &Formula) {
    let post = ProbAssignment::new(sys, Assignment::post());
    let model = Model::new(&post);
    let fast = model.sat(f).expect("model checks");
    let slow = reference_sat(sys, &post, f);
    let fast_pts: BTreeSet<PointId> = fast.iter().collect();
    assert_eq!(fast_pts, slow, "evaluators disagree on {f}");
}

fn main() {
    let reps = kpa_bench::default_reps();
    let mut rows: Vec<(String, std::time::Duration)> = Vec::new();

    // Identity on the paper walkthrough systems: the introduction's
    // secret coin, the Section 7 asynchronous tosses, and the Section 4
    // coordinated-attack protocol.
    let coin = secret_coin().expect("builds");
    let p1 = AgentId(0);
    for f in [
        Formula::prop("c=h"),
        Formula::prop("c=h").known_by(AgentId(2)),
        Formula::prop("c=h").k_alpha(p1, rat!(1 / 2)),
        Formula::prop("recent:c=h").next(),
    ] {
        check_identical(&coin, &f);
    }
    let tosses = async_coin_tosses(4).expect("builds");
    for f in [
        Formula::prop("recent=h").eventually(),
        Formula::prop("recent=h").k_alpha(p1, rat!(1 / 2)),
        Formula::prop("c0=h").until(Formula::prop("recent=t")),
    ] {
        check_identical(&tosses, &f);
    }
    let attack = ca1(3, Rat::new(1, 2)).expect("builds");
    for f in [
        Formula::prop("coordinated").eventually(),
        Formula::prop("coordinated")
            .eventually()
            .not()
            .known_by(AgentId(0)),
    ] {
        check_identical(&attack, &f);
    }
    println!("identity checks passed (secret coin, async tosses, coordinated attack)\n");

    // The timed comparison: 2^10 runs × 11 times = 11 264 points.
    let sys = async_coin_tosses(10).expect("builds");
    let n_points = sys.points().count();
    assert!(n_points >= 10_000, "need ≥ 10⁴ points, got {n_points}");
    let p2 = AgentId(1);
    let f = Formula::prop("recent=h")
        .implies(Formula::prop("recent=t").eventually())
        .known_by(p2);
    let post = ProbAssignment::new(&sys, Assignment::post());

    let fast = kpa_bench::bench_time(&format!("kernel_sat/bitset/{n_points}"), reps, || {
        // A fresh model per pass so the formula cache cannot help.
        let model = Model::new(&post);
        model.sat(&f).expect("model checks").len()
    });
    let slow = kpa_bench::bench_time(&format!("kernel_sat/btreeset/{n_points}"), reps, || {
        reference_sat(&sys, &post, &f).len()
    });
    rows.push((format!("kernel_sat/bitset/{n_points}"), fast));
    rows.push((format!("kernel_sat/btreeset/{n_points}"), slow));

    // Outputs identical on the large system too.
    check_identical(&sys, &f);

    let speedup = slow.as_secs_f64() / fast.as_secs_f64();
    println!("\nspeedup: {speedup:.1}× on {n_points} points");
    assert!(
        speedup >= 2.0,
        "dense kernel must be ≥ 2× faster than the BTreeSet reference (got {speedup:.2}×)"
    );

    // ------------------------------------------------------------------
    // Parallel sweep: the pool-backed evaluator at 1 vs 4 threads on a
    // probability-heavy formula (`K^α` forces a per-point space sweep,
    // so each point carries real work for the workers to steal).
    // ------------------------------------------------------------------
    let fut = ProbAssignment::new(&sys, Assignment::fut());
    let g = Formula::prop("recent=h").k_alpha(p2, rat!(1 / 2));
    let serial_set = kpa_pool::with_threads(1, || Model::new(&fut).sat(&g).expect("model checks"));
    let t1 = kpa_pool::with_threads(1, || {
        kpa_bench::bench_time(
            &format!("kernel_par_sat/threads=1/{n_points}"),
            reps,
            || {
                // Fresh assignment + model per pass so neither the formula
                // cache nor the space cache can help.
                let fresh = ProbAssignment::new(&sys, Assignment::fut());
                Model::new(&fresh).sat(&g).expect("model checks").len()
            },
        )
    });
    let t4 = kpa_pool::with_threads(4, || {
        kpa_bench::bench_time(
            &format!("kernel_par_sat/threads=4/{n_points}"),
            reps,
            || {
                let fresh = ProbAssignment::new(&sys, Assignment::fut());
                Model::new(&fresh).sat(&g).expect("model checks").len()
            },
        )
    });
    rows.push((format!("kernel_par_sat/threads=1/{n_points}"), t1));
    rows.push((format!("kernel_par_sat/threads=4/{n_points}"), t4));
    let parallel_set =
        kpa_pool::with_threads(4, || Model::new(&fut).sat(&g).expect("model checks"));
    assert_eq!(
        *serial_set, *parallel_set,
        "parallel satisfaction sets must be bit-identical to serial"
    );
    let par_speedup = t1.as_secs_f64() / t4.as_secs_f64();
    println!("\nparallel speedup: {par_speedup:.2}× at 4 threads on {n_points} points");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores >= 4 {
        assert!(
            par_speedup >= 1.5,
            "pool sweep must be ≥ 1.5× faster at 4 threads (got {par_speedup:.2}×)"
        );
    } else {
        // Wall-clock speedup needs hardware parallelism; on smaller
        // hosts the section still pins bit-identical outputs and
        // bounded overhead (the serial-fallback contract).
        println!("({cores} core(s) available — the ≥ 1.5× assert needs ≥ 4 cores; skipped)");
        assert!(
            par_speedup >= 0.5,
            "pool overhead at 4 workers on {cores} core(s) must stay bounded (got {par_speedup:.2}×)"
        );
    }

    // ------------------------------------------------------------------
    // Measure kernel: word-masked block traces + common-denominator
    // accumulation (the dense `measure_interval` path) vs the generic
    // element-at-a-time scan, on the clockless agent's post spaces
    // (1024 runs × 11 times). Single-threaded by construction — each
    // query is one serial pass over the space.
    // ------------------------------------------------------------------
    let phi_set = sys.points_satisfying(sys.prop_id("recent=h").expect("prop"));
    let c0_set = sys.points_satisfying(sys.prop_id("c0=h").expect("prop"));
    // The distinct sample spaces the clockless agent sees under P^post.
    let mut spaces = Vec::new();
    for c in sys.points() {
        let s = post.space(p1, c).expect("space builds");
        if !spaces.iter().any(|d| std::sync::Arc::ptr_eq(d, &s)) {
            assert!(s.has_kernel(), "dense kernel must build for paper systems");
            spaces.push(s);
        }
    }
    let queries = [
        phi_set.clone(),
        phi_set.complement(),
        c0_set.clone(),
        c0_set.union(&phi_set),
        sys.full_points(),
    ];
    // Both paths agree query-for-query (the differential suite sweeps
    // this broadly; re-asserted here so the timed rows do equal work).
    for s in &spaces {
        for q in &queries {
            assert_eq!(
                s.measure_interval(q),
                s.generic().measure_interval(q),
                "dense and generic intervals must be bit-identical"
            );
        }
    }
    let n_spaces = spaces.len();
    let dense_t = kpa_bench::bench_time(
        &format!("measure_interval/dense/{n_spaces}x{n_points}"),
        reps,
        || {
            let mut acc = Rat::ZERO;
            for s in &spaces {
                for q in &queries {
                    let (lo, hi) = s.measure_interval(q);
                    acc += lo;
                    acc += hi;
                }
            }
            acc
        },
    );
    let generic_t = kpa_bench::bench_time(
        &format!("measure_interval/generic/{n_spaces}x{n_points}"),
        reps,
        || {
            let mut acc = Rat::ZERO;
            for s in &spaces {
                for q in &queries {
                    let (lo, hi) = s.generic().measure_interval(q);
                    acc += lo;
                    acc += hi;
                }
            }
            acc
        },
    );
    rows.push((
        format!("measure_interval/dense/{n_spaces}x{n_points}"),
        dense_t,
    ));
    rows.push((
        format!("measure_interval/generic/{n_spaces}x{n_points}"),
        generic_t,
    ));
    let measure_speedup = generic_t.as_secs_f64() / dense_t.as_secs_f64();
    println!("\nmeasure kernel speedup: {measure_speedup:.1}× (dense vs generic, single thread)");
    assert!(
        measure_speedup >= 2.0,
        "dense measure kernel must be ≥ 2× faster than the generic scan (got {measure_speedup:.2}×)"
    );

    // ------------------------------------------------------------------
    // Compiled threshold family: k serial tree-walk sweeps (one model
    // check per α, the pre-compiler engine path with every memo on) vs
    // ONE `pr_ge_family` call through the hash-consed DAG, which
    // resolves each distinct sample space once and reads off all k
    // verdicts per class. Single-threaded, so the row isolates the
    // sweep-count reduction rather than scheduling effects.
    // ------------------------------------------------------------------
    let alphas = [rat!(1 / 4), rat!(1 / 2), rat!(3 / 4), Rat::ONE];
    let family: Vec<Formula> = alphas
        .iter()
        .map(|&a| Formula::prop("recent=h").pr_ge(p1, a))
        .collect();
    let dag_alphas: Vec<Rat> = (1..=8).map(|k| Rat::new(k, 8)).collect();
    let dag_body = Formula::prop("recent=h");
    let run_dag_off = || -> Vec<usize> {
        // Fresh model per pass (no formula cache); k independent
        // tree-walk sweeps, one per threshold.
        let model = Model::new(&post);
        dag_alphas
            .iter()
            .map(|&a| {
                model
                    .sat(&dag_body.clone().pr_ge(p1, a))
                    .expect("model checks")
                    .len()
            })
            .collect()
    };
    let run_dag_on = || -> Vec<usize> {
        // Fresh model per pass: one batched call over the same family.
        let model = Model::new(&post);
        model
            .pr_ge_family(p1, &dag_alphas, &dag_body)
            .expect("model checks")
            .iter()
            .map(|s| s.len())
            .collect()
    };
    assert_eq!(
        run_dag_off(),
        run_dag_on(),
        "the one-sweep family evaluator must be observationally invisible"
    );
    let (dag_off, dag_on) = kpa_pool::with_threads(1, || {
        let off = kpa_bench::bench_time(&format!("pr_ge_family/dag_off/{n_points}"), reps, || {
            run_dag_off()
        });
        let on = kpa_bench::bench_time(&format!("pr_ge_family/dag_on/{n_points}"), reps, || {
            run_dag_on()
        });
        (off, on)
    });
    rows.push((format!("pr_ge_family/dag_off/{n_points}"), dag_off));
    rows.push((format!("pr_ge_family/dag_on/{n_points}"), dag_on));
    let dag_speedup = dag_off.as_secs_f64() / dag_on.as_secs_f64();
    println!(
        "\ncompiled-family speedup: {dag_speedup:.2}× across {} thresholds (single thread)",
        dag_alphas.len()
    );
    assert!(
        dag_speedup >= 2.0,
        "the one-sweep family evaluator must be ≥ 2× faster than serial sweeps (got {dag_speedup:.2}×)"
    );

    // ------------------------------------------------------------------
    // Batched sample plan: the same memoized threshold family with the
    // per-agent SamplePlan off (per-point sample extraction, the PR 3
    // path) vs on (one table lookup per point). Single-threaded by
    // pinning the pool to 1 worker, so the row isolates the per-point
    // extraction cost rather than scheduling effects.
    // ------------------------------------------------------------------
    let run_family_planned = |plan: bool| -> Vec<usize> {
        // Pr memo ON both ways: the comparison is plan vs no-plan on
        // the memoized sweep the engine actually runs.
        let model = Model::with_memos(&post, true, true, plan);
        family
            .iter()
            .map(|f| model.sat(f).expect("model checks").len())
            .collect()
    };
    assert_eq!(
        run_family_planned(false),
        run_family_planned(true),
        "the sample plan must be observationally invisible"
    );
    // Warm the per-assignment plan (it is a one-time artifact shared by
    // every model over `post`; its build costs about one unplanned
    // sweep and is amortized across all later sweeps).
    let plan = post.sample_plan(p1);
    assert!(plan.is_batched(), "post plans batch whole classes");
    assert_eq!(
        plan.extractions(),
        plan.classes(),
        "one extraction per class"
    );
    assert!(plan.extractions() < n_points, "batching must pay");
    let (plan_off, plan_on) = kpa_pool::with_threads(1, || {
        let off = kpa_bench::bench_time(&format!("pr_ge_family/plan_off/{n_points}"), reps, || {
            run_family_planned(false)
        });
        let on = kpa_bench::bench_time(&format!("pr_ge_family/plan_on/{n_points}"), reps, || {
            run_family_planned(true)
        });
        (off, on)
    });
    rows.push((format!("pr_ge_family/plan_off/{n_points}"), plan_off));
    rows.push((format!("pr_ge_family/plan_on/{n_points}"), plan_on));
    let plan_speedup = plan_off.as_secs_f64() / plan_on.as_secs_f64();
    println!(
        "\nsample-plan speedup: {plan_speedup:.2}× across {} thresholds (single thread)",
        alphas.len()
    );
    assert!(
        plan_speedup >= 2.0,
        "the planned Pr sweep must be ≥ 2× faster than the unplanned path (got {plan_speedup:.2}×)"
    );

    // ------------------------------------------------------------------
    // Traced pass: re-run each row's workload ONCE with tracing enabled
    // and attribute counter deltas to rows. This runs strictly after
    // every timed section, so instrumentation cannot perturb the
    // timings above — and it proves, via the kernel fallback counters,
    // that the "dense" rows actually took the dense path rather than
    // silently falling back to the generic scan.
    // ------------------------------------------------------------------
    kpa_trace::Trace::enabled(true);
    kpa_trace::registry().reset();
    let mut row_deltas: std::collections::BTreeMap<
        String,
        std::collections::BTreeMap<String, u64>,
    > = std::collections::BTreeMap::new();
    {
        let mut traced = |label: String, work: &mut dyn FnMut()| {
            let before = kpa_trace::registry().snapshot();
            let started = std::time::Instant::now();
            work();
            let row_ns = started.elapsed().as_nanos() as u64;
            let after = kpa_trace::registry().snapshot();
            // Feed the rolling-window path too, so the exported trace
            // baseline carries a non-empty `windowed` section for the
            // schema gate to validate.
            kpa_trace::registry().rolling("bench.row_ns").record(row_ns);
            row_deltas.insert(label, after.delta_counters(&before));
        };
        traced(format!("kernel_sat/bitset/{n_points}"), &mut || {
            let model = Model::new(&post);
            let _ = model.sat(&f).expect("model checks").len();
        });
        traced(format!("kernel_par_sat/threads=4/{n_points}"), &mut || {
            kpa_pool::with_threads(4, || {
                let fresh = ProbAssignment::new(&sys, Assignment::fut());
                let _ = Model::new(&fresh).sat(&g).expect("model checks").len();
            });
        });
        traced(
            format!("measure_interval/dense/{n_spaces}x{n_points}"),
            &mut || {
                for s in &spaces {
                    for q in &queries {
                        let _ = s.measure_interval(q);
                    }
                }
            },
        );
        traced(
            format!("measure_interval/generic/{n_spaces}x{n_points}"),
            &mut || {
                for s in &spaces {
                    for q in &queries {
                        let _ = s.generic().measure_interval(q);
                    }
                }
            },
        );
        traced(format!("pr_ge_family/dag_on/{n_points}"), &mut || {
            let _ = run_dag_on();
        });
        // The unplanned sweep resolves every point through the sharded
        // space cache — the row that keeps `assign.space_cache_hit`
        // observable now that the planned paths bypass it.
        traced(format!("pr_ge_family/plan_off/{n_points}"), &mut || {
            let _ = run_family_planned(false);
        });
        traced(format!("pr_ge_family/plan_on/{n_points}"), &mut || {
            let _ = run_family_planned(true);
        });
    }
    // The dense row must be all-kernel: every query word-wise, zero
    // generic fallbacks through the dispatching space.
    let dense_row = &row_deltas[&format!("measure_interval/dense/{n_spaces}x{n_points}")];
    let dense_queries = dense_row.get("measure.dense_query").copied().unwrap_or(0);
    let dense_fallbacks = dense_row
        .get("assign.generic_measure")
        .copied()
        .unwrap_or(0);
    assert!(
        dense_queries as usize >= n_spaces * queries.len(),
        "dense row must take the word-wise path on every query \
         (saw {dense_queries} dense queries for {n_spaces}x{} work)",
        queries.len()
    );
    assert_eq!(
        dense_fallbacks, 0,
        "dense row must not fall back to the generic element scan"
    );
    // ... and its scans must go through the 4-wide block loop (the
    // counter the TRACE gate requires positive since the wide kernels).
    let wide_blocks = dense_row.get("measure.wide_blocks").copied().unwrap_or(0);
    assert!(
        wide_blocks > 0,
        "dense row must scan blocks through the wide kernel path"
    );
    // The generic row goes around the dispatcher entirely: no dense
    // queries at all.
    let generic_row = &row_deltas[&format!("measure_interval/generic/{n_spaces}x{n_points}")];
    assert_eq!(
        generic_row.get("measure.dense_query").copied().unwrap_or(0),
        0,
        "generic row must not touch the dense kernel"
    );
    // The planned sweep must actually hit the plan.
    let plan_row = &row_deltas[&format!("pr_ge_family/plan_on/{n_points}")];
    let plan_hits_traced = plan_row.get("logic.plan_hit").copied().unwrap_or(0);
    assert!(
        plan_hits_traced > 0,
        "planned Pr row must resolve spaces through the sample plan"
    );
    // The per-class accumulation in the planned sweep works on
    // tight-footprint class sets, so the footprint skip must fire.
    let skipped_words = plan_row
        .get("system.footprint_skipped_words")
        .copied()
        .unwrap_or(0);
    assert!(
        skipped_words > 0,
        "planned Pr row must skip words via set footprints"
    );
    // The compiled family must actually share structure: compiling the
    // k members hash-conses their common body, so the dedup counter is
    // positive — and every member landed in the interned arena.
    let dag_row = &row_deltas[&format!("pr_ge_family/dag_on/{n_points}")];
    let terms_interned = dag_row.get("logic.terms_interned").copied().unwrap_or(0);
    let terms_deduped = dag_row.get("logic.terms_deduped").copied().unwrap_or(0);
    assert!(
        terms_interned > 0,
        "compiled family row must intern terms into the arena"
    );
    assert!(
        terms_deduped > 0,
        "compiled family row must hash-cons the shared body (dedup = 0)"
    );
    println!(
        "\ntraced pass: {dense_queries} dense queries on the dense row, \
         0 generic fallbacks, {plan_hits_traced} plan hits on the planned row"
    );
    let mut trace_report = kpa_trace::registry().snapshot();
    trace_report.rows = row_deltas;
    assert!(
        trace_report.windowed.contains_key("bench.row_ns"),
        "traced pass must populate the rolling window for the trace export"
    );
    if let Ok(tpath) = std::env::var("KPA_TRACE_JSON") {
        std::fs::write(&tpath, trace_report.to_json("kernel"))
            .unwrap_or_else(|e| panic!("failed to write {tpath}: {e}"));
        println!("wrote {tpath}");
    }
    kpa_trace::Trace::enabled(false);

    // ------------------------------------------------------------------
    // Machine-readable rows (BENCH_5.json) when KPA_BENCH_JSON is set —
    // see scripts/bench.sh.
    // ------------------------------------------------------------------
    if let Ok(path) = std::env::var("KPA_BENCH_JSON") {
        let mut out = String::from("{\n  \"bench\": \"kernel\",\n");
        out.push_str(&format!("  \"points\": {n_points},\n  \"reps\": {reps},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, (label, d)) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": \"{label}\", \"seconds\": {}}}{comma}\n",
                d.as_secs_f64()
            ));
        }
        out.push_str("  ],\n  \"speedups\": {\n");
        out.push_str(&format!("    \"sat_bitset_vs_btreeset\": {speedup},\n"));
        out.push_str(&format!("    \"par_sat_threads4_vs_1\": {par_speedup},\n"));
        out.push_str(&format!(
            "    \"measure_dense_vs_generic\": {measure_speedup},\n"
        ));
        out.push_str(&format!("    \"pr_ge_dag_on_vs_off\": {dag_speedup},\n"));
        out.push_str(&format!("    \"pr_ge_plan_on_vs_off\": {plan_speedup}\n"));
        out.push_str("  }\n}\n");
        std::fs::write(&path, &out).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
