//! Micro-benchmark of the dense `PointSet` kernel.
//!
//! Pits the word-wise `Model::sat` evaluator against an independent
//! reference evaluator that computes the same Section 5 semantics over
//! `BTreeSet<PointId>` — the representation the engine used before the
//! kernel refactor. Outputs are asserted identical on the paper's
//! walkthrough systems, and the timed comparison runs on an
//! asynchronous coin system with > 10⁴ points, where the bitset path
//! is required to be at least 2× faster.
//!
//! A second timed section pins the `kpa-pool` parallel sweeps: the same
//! probability-heavy formula is model checked at 1 thread and at 4
//! threads on the 11k-point system, the outputs are asserted
//! bit-identical, and the 4-thread pass is required to be ≥ 1.5×
//! faster.
//!
//! Run with `cargo bench -p kpa-bench --bench kernel`.

use kpa_assign::{Assignment, ProbAssignment};
use kpa_logic::{Formula, Model};
use kpa_measure::{rat, Rat};
use kpa_protocols::{async_coin_tosses, ca1, secret_coin};
use kpa_system::{AgentId, PointId, System};
use std::collections::BTreeSet;

/// Reference evaluator: the paper's satisfaction relation, computed
/// point-by-point over `BTreeSet<PointId>`. Covers the fragment the
/// benchmark and the identity checks use (everything except the
/// common-knowledge fixed points).
fn reference_sat(sys: &System, pa: &ProbAssignment<'_>, f: &Formula) -> BTreeSet<PointId> {
    match f {
        Formula::True => sys.points().collect(),
        Formula::Prop(name) => {
            let id = sys.prop_id(name).expect("known proposition");
            sys.points().filter(|&p| sys.holds(id, p)).collect()
        }
        Formula::Not(x) => {
            let s = reference_sat(sys, pa, x);
            sys.points().filter(|p| !s.contains(p)).collect()
        }
        Formula::And(xs) => {
            let mut acc: BTreeSet<PointId> = sys.points().collect();
            for x in xs {
                let s = reference_sat(sys, pa, x);
                acc.retain(|p| s.contains(p));
            }
            acc
        }
        Formula::Or(xs) => {
            let mut acc = BTreeSet::new();
            for x in xs {
                acc.extend(reference_sat(sys, pa, x));
            }
            acc
        }
        Formula::Knows(i, x) => {
            let s = reference_sat(sys, pa, x);
            sys.points()
                .filter(|&c| sys.indistinguishable(*i, c).iter().all(|d| s.contains(&d)))
                .collect()
        }
        Formula::PrGe(i, alpha, x) => {
            let s = reference_sat(sys, pa, x);
            sys.points()
                .filter(|&c| pa.inner(*i, c, &s).expect("space builds") >= *alpha)
                .collect()
        }
        Formula::Next(x) => {
            let s = reference_sat(sys, pa, x);
            let succ = |p: &PointId| PointId {
                tree: p.tree,
                run: p.run,
                time: p.time + 1,
            };
            sys.points()
                .filter(|p| p.time < sys.horizon() && s.contains(&succ(p)))
                .collect()
        }
        Formula::Until(x, y) => {
            let hold = reference_sat(sys, pa, x);
            let goal = reference_sat(sys, pa, y);
            let succ = |p: &PointId| PointId {
                tree: p.tree,
                run: p.run,
                time: p.time + 1,
            };
            let mut acc = goal;
            loop {
                let next: BTreeSet<PointId> = sys
                    .points()
                    .filter(|p| {
                        acc.contains(p)
                            || (hold.contains(p)
                                && p.time < sys.horizon()
                                && acc.contains(&succ(p)))
                    })
                    .collect();
                if next == acc {
                    break acc;
                }
                acc = next;
            }
        }
        _ => panic!("reference evaluator: unsupported fragment {f:?}"),
    }
}

/// Asserts that the kernel evaluator and the reference evaluator agree
/// on `f` over `sys`.
fn check_identical(sys: &System, f: &Formula) {
    let post = ProbAssignment::new(sys, Assignment::post());
    let model = Model::new(&post);
    let fast = model.sat(f).expect("model checks");
    let slow = reference_sat(sys, &post, f);
    let fast_pts: BTreeSet<PointId> = fast.iter().collect();
    assert_eq!(fast_pts, slow, "evaluators disagree on {f}");
}

fn main() {
    let reps = kpa_bench::default_reps();

    // Identity on the paper walkthrough systems: the introduction's
    // secret coin, the Section 7 asynchronous tosses, and the Section 4
    // coordinated-attack protocol.
    let coin = secret_coin().expect("builds");
    let p1 = AgentId(0);
    for f in [
        Formula::prop("c=h"),
        Formula::prop("c=h").known_by(AgentId(2)),
        Formula::prop("c=h").k_alpha(p1, rat!(1 / 2)),
        Formula::prop("recent:c=h").next(),
    ] {
        check_identical(&coin, &f);
    }
    let tosses = async_coin_tosses(4).expect("builds");
    for f in [
        Formula::prop("recent=h").eventually(),
        Formula::prop("recent=h").k_alpha(p1, rat!(1 / 2)),
        Formula::prop("c0=h").until(Formula::prop("recent=t")),
    ] {
        check_identical(&tosses, &f);
    }
    let attack = ca1(3, Rat::new(1, 2)).expect("builds");
    for f in [
        Formula::prop("coordinated").eventually(),
        Formula::prop("coordinated")
            .eventually()
            .not()
            .known_by(AgentId(0)),
    ] {
        check_identical(&attack, &f);
    }
    println!("identity checks passed (secret coin, async tosses, coordinated attack)\n");

    // The timed comparison: 2^10 runs × 11 times = 11 264 points.
    let sys = async_coin_tosses(10).expect("builds");
    let n_points = sys.points().count();
    assert!(n_points >= 10_000, "need ≥ 10⁴ points, got {n_points}");
    let p2 = AgentId(1);
    let f = Formula::prop("recent=h")
        .implies(Formula::prop("recent=t").eventually())
        .known_by(p2);
    let post = ProbAssignment::new(&sys, Assignment::post());

    let fast = kpa_bench::bench_time(&format!("kernel_sat/bitset/{n_points}"), reps, || {
        // A fresh model per pass so the formula cache cannot help.
        let model = Model::new(&post);
        model.sat(&f).expect("model checks").len()
    });
    let slow = kpa_bench::bench_time(&format!("kernel_sat/btreeset/{n_points}"), reps, || {
        reference_sat(&sys, &post, &f).len()
    });

    // Outputs identical on the large system too.
    check_identical(&sys, &f);

    let speedup = slow.as_secs_f64() / fast.as_secs_f64();
    println!("\nspeedup: {speedup:.1}× on {n_points} points");
    assert!(
        speedup >= 2.0,
        "dense kernel must be ≥ 2× faster than the BTreeSet reference (got {speedup:.2}×)"
    );

    // ------------------------------------------------------------------
    // Parallel sweep: the pool-backed evaluator at 1 vs 4 threads on a
    // probability-heavy formula (`K^α` forces a per-point space sweep,
    // so each point carries real work for the workers to steal).
    // ------------------------------------------------------------------
    let fut = ProbAssignment::new(&sys, Assignment::fut());
    let g = Formula::prop("recent=h").k_alpha(p2, rat!(1 / 2));
    let serial_set = kpa_pool::with_threads(1, || {
        Model::new(&fut).sat(&g).expect("model checks")
    });
    let t1 = kpa_pool::with_threads(1, || {
        kpa_bench::bench_time(&format!("kernel_par_sat/threads=1/{n_points}"), reps, || {
            // Fresh assignment + model per pass so neither the formula
            // cache nor the space cache can help.
            let fresh = ProbAssignment::new(&sys, Assignment::fut());
            Model::new(&fresh).sat(&g).expect("model checks").len()
        })
    });
    let t4 = kpa_pool::with_threads(4, || {
        kpa_bench::bench_time(&format!("kernel_par_sat/threads=4/{n_points}"), reps, || {
            let fresh = ProbAssignment::new(&sys, Assignment::fut());
            Model::new(&fresh).sat(&g).expect("model checks").len()
        })
    });
    let parallel_set = kpa_pool::with_threads(4, || {
        Model::new(&fut).sat(&g).expect("model checks")
    });
    assert_eq!(
        *serial_set, *parallel_set,
        "parallel satisfaction sets must be bit-identical to serial"
    );
    let par_speedup = t1.as_secs_f64() / t4.as_secs_f64();
    println!("\nparallel speedup: {par_speedup:.2}× at 4 threads on {n_points} points");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores >= 4 {
        assert!(
            par_speedup >= 1.5,
            "pool sweep must be ≥ 1.5× faster at 4 threads (got {par_speedup:.2}×)"
        );
    } else {
        // Wall-clock speedup needs hardware parallelism; on smaller
        // hosts the section still pins bit-identical outputs and
        // bounded overhead (the serial-fallback contract).
        println!("({cores} core(s) available — the ≥ 1.5× assert needs ≥ 4 cores; skipped)");
        assert!(
            par_speedup >= 0.5,
            "pool overhead at 4 workers on {cores} core(s) must stay bounded (got {par_speedup:.2}×)"
        );
    }
}
