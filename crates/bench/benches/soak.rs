//! Loopback soak benchmark of the `kpa-serve` service.
//!
//! PR 7 added `kpa-serve`: a long-running TCP process speaking the
//! line-delimited JSON protocol of DESIGN §3.2g, with sessions pinning
//! a shared [`ModelArtifact`] and batched query submission. This bench
//! holds the *service* (framing, sessions, the artifact cache, and the
//! eval path together) to the same standard the in-process benches
//! hold the engine:
//!
//! 1. **Correctness before timing** — a client loads the walkthrough
//!    system over the wire and every answer in the mixed formula
//!    family is asserted bit-identical (the raw bitset words) to the
//!    serial `Model` facade at pool width 1. Nothing is timed until
//!    the loopback path has proven it computes the same bits.
//!
//! 2. **Soak rows** — 1 client vs `CLIENTS` concurrent clients, each
//!    running `ROUNDS` batched passes over the family against one
//!    server whose sessions share a single cached artifact. The
//!    aggregate rate of the concurrent row is exported as `serve_qps`
//!    (host-dependent; the gate requires presence and positivity,
//!    like `shared_artifact_qps` in BENCH_6).
//!
//! 3. **Latency histogram** — after the timed rows the server's
//!    process scope is snapshotted and the `proc.frame_ns` histogram's
//!    p50/p99 (log₂ bucket floors, nanoseconds) are exported both as
//!    rows (`frame_latency/p50`, `frame_latency/p99`, in seconds) and
//!    as positive-gated `serve_frame_p50_ns` / `serve_frame_p99_ns`
//!    figures, proving the per-frame latency instrumentation is live
//!    under real concurrent load.
//!
//! `serve_clients4_vs_1` rides along for inspection but is excluded
//! from gating — like the other `*_threads4_vs_1` figures it measures
//! core-count scaling, which legitimately sits near (or below) 1× on
//! single-core runners.
//!
//! Run with `cargo bench -p kpa-bench --bench soak`. Set
//! `KPA_BENCH_JSON=BENCH_7.json` (or use `scripts/bench.sh`) to emit
//! the rows as machine-readable JSON.

use kpa_assign::ProbAssignment;
use kpa_logic::{parse_in, Model};
use kpa_serve::catalog::{build_assignment, build_system};
use kpa_serve::proto::words_from_value;
use kpa_serve::{Client, QueryItem, QueryKind, ServeConfig, Server};

/// Concurrent client connections in the soak row.
const CLIENTS: usize = 4;

/// Batched passes over the family per client per timed pass: enough
/// that connect + load cost is noise next to the query frames.
const ROUNDS: usize = 25;

/// The walkthrough system under soak — same point count as the
/// BENCH_6 shared-artifact rows, so the wire overhead is read off by
/// comparing the two files' query rates.
const SYSTEM: &str = "async-coins:8";
const ASSIGNMENT: &str = "post";

/// The mixed query family in concrete syntax (the wire carries source
/// text): sat, knowledge, common knowledge, probability thresholds,
/// and temporal operators over overlapping subterms, so concurrent
/// sessions collide on the shared memo keys.
fn formula_family() -> Vec<String> {
    let (p, q, a0, a1, group) = ("recent=h", "c0=h", "p1", "p2", "p1,p2");
    vec![
        p.to_string(),
        format!("K{{{a0}}} {p}"),
        format!("C{{{group}}} K{{{a0}}} {p}"),
        format!("Pr{{{a0}}}({p}) >= 1/4"),
        format!("Pr{{{a0}}}({p}) >= 3/4"),
        format!("K{{{a1}}}^1/2 {p}"),
        format!("<>{q}"),
        format!("K{{{a1}}}({p} & {q})"),
    ]
}

/// One soak client: connect, pin the system, then `ROUNDS` batched
/// passes over the family (rotated by client index so no two batches
/// agree on order). Returns the number of result rows received.
fn client_pass(addr: std::net::SocketAddr, family: &[String], client: usize) -> usize {
    let mut c = Client::connect(addr).expect("connect");
    c.hello().expect("hello");
    c.load_named(SYSTEM, ASSIGNMENT).expect("load");
    let n = family.len();
    let mut received = 0usize;
    for round in 0..ROUNDS {
        let items: Vec<QueryItem> = (0..n)
            .map(|k| {
                let i = (k + client + round) % n;
                QueryItem {
                    id: i as i64,
                    kind: QueryKind::Sat {
                        formula: family[i].clone(),
                    },
                }
            })
            .collect();
        received += c.query(&items).expect("query").len();
    }
    c.bye().expect("bye");
    received
}

/// Spawns `clients` soak clients against the server and waits for all
/// of them; total result rows across clients.
fn soak_pass(addr: std::net::SocketAddr, family: &[String], clients: usize) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let family = family.to_vec();
                scope.spawn(move || client_pass(addr, &family, client))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    })
}

fn main() {
    let reps = kpa_bench::default_reps();

    let mut server = Server::bind(ServeConfig::default()).expect("bind loopback server");
    let addr = server.local_addr();

    // ------------------------------------------------------------------
    // Correctness first: every family answer over the wire must be the
    // same bits as the serial facade computes in-process.
    // ------------------------------------------------------------------
    let sys = build_system(SYSTEM).expect("catalog system builds");
    let assignment = build_assignment(ASSIGNMENT, &sys).expect("assignment");
    let n_points = sys.points().count();
    let family = formula_family();
    let pa = ProbAssignment::new(&sys, assignment);
    let serial = Model::new(&pa);
    let expected: Vec<Vec<u64>> = kpa_pool::with_threads(1, || {
        family
            .iter()
            .map(|src| {
                let f = parse_in(src, &sys).expect("family parses");
                serial
                    .sat(&f)
                    .expect("serial model checks")
                    .as_words()
                    .to_vec()
            })
            .collect()
    });
    {
        let mut c = Client::connect(addr).expect("connect");
        c.hello().expect("hello");
        c.load_named(SYSTEM, ASSIGNMENT).expect("load");
        let items: Vec<QueryItem> = family
            .iter()
            .enumerate()
            .map(|(i, src)| QueryItem {
                id: i as i64,
                kind: QueryKind::Sat {
                    formula: src.clone(),
                },
            })
            .collect();
        let rows = c.query(&items).expect("query");
        assert_eq!(rows.len(), family.len());
        for (i, row) in rows.iter().enumerate() {
            let words =
                words_from_value(row.get("words").expect("words")).expect("well-formed words");
            assert_eq!(
                words, expected[i],
                "service diverged from the serial facade on {:?}",
                family[i]
            );
        }
        c.bye().expect("bye");
    }
    println!(
        "identity check: {} formulas bit-identical on {} points (serial facade vs loopback service)\n",
        family.len(),
        n_points
    );

    // ------------------------------------------------------------------
    // Soak rows: 1 client vs CLIENTS clients against the same server.
    // The warm-up inside bench_time performs the cold artifact build,
    // so the timed passes measure the steady state.
    // ------------------------------------------------------------------
    let mut rows: Vec<(String, std::time::Duration)> = Vec::new();
    let queries_per_client = (ROUNDS * family.len()) as f64;
    let t1 = kpa_bench::bench_time(&format!("serve_soak/clients=1/{n_points}"), reps, || {
        soak_pass(addr, &family, 1)
    });
    let t4 = kpa_bench::bench_time(
        &format!("serve_soak/clients={CLIENTS}/{n_points}"),
        reps,
        || soak_pass(addr, &family, CLIENTS),
    );
    rows.push((format!("serve_soak/clients=1/{n_points}"), t1));
    rows.push((format!("serve_soak/clients={CLIENTS}/{n_points}"), t4));
    let qps = queries_per_client * CLIENTS as f64 / t4.as_secs_f64();
    let client_scaling = t1.as_secs_f64() / t4.as_secs_f64();
    println!(
        "\nserve soak: {qps:.0} queries/s aggregate across {CLIENTS} clients \
         ({client_scaling:.2}x vs 1 client; core-count dependent)"
    );
    assert!(
        qps > 0.0,
        "the soak row must complete queries (got {qps} qps)"
    );

    // ------------------------------------------------------------------
    // Latency histogram: the per-frame service latency recorded by the
    // process scope while the soak ran. Quantiles are log2 bucket
    // floors in nanoseconds — coarse, but host-comparable in shape.
    // ------------------------------------------------------------------
    let report = server.shared().proc().snapshot();
    let frame = report
        .histograms
        .get("proc.frame_ns")
        .expect("the soak must populate the proc.frame_ns histogram");
    let (p50_ns, p99_ns) = (
        frame.p50().expect("p50 of a populated histogram"),
        frame.p99().expect("p99 of a populated histogram"),
    );
    println!(
        "\nframe latency: {} frames, p50 >= {:.1}us, p99 >= {:.1}us (log2 bucket floors)",
        frame.count,
        p50_ns as f64 / 1e3,
        p99_ns as f64 / 1e3
    );
    assert!(
        frame.count as usize >= 2 * (CLIENTS + 1) * (ROUNDS + 3),
        "every soak frame must land in the latency histogram (got {})",
        frame.count
    );
    assert!(p50_ns > 0 && p99_ns >= p50_ns, "quantiles must be ordered");
    rows.push((
        "frame_latency/p50".to_string(),
        std::time::Duration::from_nanos(p50_ns),
    ));
    rows.push((
        "frame_latency/p99".to_string(),
        std::time::Duration::from_nanos(p99_ns),
    ));

    // The artifact cache must have answered every session from ONE
    // build of the pinned system (the whole point of the shared
    // state), and the query counter must cover the soak volume.
    let builds = report
        .counters
        .get("proc.artifact_builds")
        .copied()
        .unwrap_or(0);
    let hits = report
        .counters
        .get("proc.artifact_hits")
        .copied()
        .unwrap_or(0);
    assert_eq!(builds, 1, "one cached artifact serves every session");
    assert!(hits > 0, "warm sessions must hit the artifact cache");
    println!(
        "artifact cache: {builds} build, {hits} hits across {} sessions",
        report.counters.get("proc.sessions").copied().unwrap_or(0)
    );

    server.shutdown();

    // ------------------------------------------------------------------
    // Machine-readable rows (BENCH_7.json) when KPA_BENCH_JSON is set —
    // see scripts/bench.sh.
    // ------------------------------------------------------------------
    if let Ok(path) = std::env::var("KPA_BENCH_JSON") {
        let mut out = String::from("{\n  \"bench\": \"serve\",\n");
        out.push_str(&format!("  \"points\": {n_points},\n  \"reps\": {reps},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, (label, d)) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": \"{label}\", \"seconds\": {}}}{comma}\n",
                d.as_secs_f64()
            ));
        }
        out.push_str("  ],\n  \"speedups\": {\n");
        out.push_str(&format!("    \"serve_qps\": {qps},\n"));
        out.push_str(&format!("    \"serve_frame_p50_ns\": {p50_ns},\n"));
        out.push_str(&format!("    \"serve_frame_p99_ns\": {p99_ns},\n"));
        out.push_str(&format!("    \"serve_clients4_vs_1\": {client_scaling}\n"));
        out.push_str("  }\n}\n");
        std::fs::write(&path, &out).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
