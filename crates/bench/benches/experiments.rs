//! Criterion benchmarks: one group per paper experiment (E1–E16).
//!
//! Each bench regenerates the corresponding experiment's quantities —
//! the "table" of the paper — so timings track the full reproduction
//! path (system construction + assignment induction + model checking).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

macro_rules! bench_experiment {
    ($name:ident, $func:path) => {
        fn $name(c: &mut Criterion) {
            c.bench_function(stringify!($name), |b| {
                b.iter(|| {
                    let rows = $func();
                    assert!(rows.iter().all(|r| r.matches), "paper mismatch in bench");
                    black_box(rows)
                });
            });
        }
    };
}

bench_experiment!(bench_e01_vardi, kpa_bench::e01_vardi);
bench_experiment!(bench_e02_footnote5, kpa_bench::e02_footnote5);
bench_experiment!(bench_e03_primality, kpa_bench::e03_primality);
bench_experiment!(bench_e04_attack_pointwise, kpa_bench::e04_attack_pointwise);
bench_experiment!(bench_e05_coin_post_fut, kpa_bench::e05_coin_post_fut);
bench_experiment!(bench_e06_die_subdivision, kpa_bench::e06_die_subdivision);
bench_experiment!(bench_e07_lattice, kpa_bench::e07_lattice);
bench_experiment!(bench_e08_theorem7, kpa_bench::e08_theorem7);
bench_experiment!(bench_e09_theorem8, kpa_bench::e09_theorem8);
bench_experiment!(bench_e10_theorem9, kpa_bench::e10_theorem9);
bench_experiment!(bench_e11_async_coins, kpa_bench::e11_async_coins);
bench_experiment!(bench_e12_prop10, kpa_bench::e12_prop10);
bench_experiment!(bench_e13_pts_vs_state, kpa_bench::e13_pts_vs_state);
bench_experiment!(bench_e14_prop11, kpa_bench::e14_prop11);
bench_experiment!(bench_e15_two_aces, kpa_bench::e15_two_aces);
bench_experiment!(bench_e16_embedding, kpa_bench::e16_embedding);
bench_experiment!(bench_e17_extensions, kpa_bench::e17_extensions);
bench_experiment!(bench_e18_scheduler, kpa_bench::e18_scheduler);
bench_experiment!(
    bench_e19_rational_opponents,
    kpa_bench::e19_rational_opponents
);
bench_experiment!(bench_e20_leaky_prover, kpa_bench::e20_leaky_prover);
bench_experiment!(bench_e21_election, kpa_bench::e21_election);
bench_experiment!(bench_e22_monty_hall, kpa_bench::e22_monty_hall);

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets =
        bench_e01_vardi,
        bench_e02_footnote5,
        bench_e03_primality,
        bench_e04_attack_pointwise,
        bench_e05_coin_post_fut,
        bench_e06_die_subdivision,
        bench_e07_lattice,
        bench_e08_theorem7,
        bench_e09_theorem8,
        bench_e10_theorem9,
        bench_e11_async_coins,
        bench_e12_prop10,
        bench_e13_pts_vs_state,
        bench_e14_prop11,
        bench_e15_two_aces,
        bench_e16_embedding,
        bench_e17_extensions,
        bench_e18_scheduler,
        bench_e19_rational_opponents,
        bench_e20_leaky_prover,
        bench_e21_election,
        bench_e22_monty_hall
);
criterion_main!(experiments);
