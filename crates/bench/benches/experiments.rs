//! Benchmarks: one row per paper experiment (E1–E22).
//!
//! Each bench regenerates the corresponding experiment's quantities —
//! the "table" of the paper — so timings track the full reproduction
//! path (system construction + assignment induction + model checking).
//! Plain `main()` harness timed with `std::time`; run with
//! `cargo bench -p kpa-bench --bench experiments`.

macro_rules! bench_experiment {
    ($reps:expr, $name:expr, $func:path) => {
        kpa_bench::bench_time($name, $reps, || {
            let rows = $func();
            assert!(rows.iter().all(|r| r.matches), "paper mismatch in bench");
            rows
        });
    };
}

fn main() {
    let reps = kpa_bench::default_reps();
    println!("experiment benchmarks (best of {reps})\n");
    bench_experiment!(reps, "e01_vardi", kpa_bench::e01_vardi);
    bench_experiment!(reps, "e02_footnote5", kpa_bench::e02_footnote5);
    bench_experiment!(reps, "e03_primality", kpa_bench::e03_primality);
    bench_experiment!(
        reps,
        "e04_attack_pointwise",
        kpa_bench::e04_attack_pointwise
    );
    bench_experiment!(reps, "e05_coin_post_fut", kpa_bench::e05_coin_post_fut);
    bench_experiment!(reps, "e06_die_subdivision", kpa_bench::e06_die_subdivision);
    bench_experiment!(reps, "e07_lattice", kpa_bench::e07_lattice);
    bench_experiment!(reps, "e08_theorem7", kpa_bench::e08_theorem7);
    bench_experiment!(reps, "e09_theorem8", kpa_bench::e09_theorem8);
    bench_experiment!(reps, "e10_theorem9", kpa_bench::e10_theorem9);
    bench_experiment!(reps, "e11_async_coins", kpa_bench::e11_async_coins);
    bench_experiment!(reps, "e12_prop10", kpa_bench::e12_prop10);
    bench_experiment!(reps, "e13_pts_vs_state", kpa_bench::e13_pts_vs_state);
    bench_experiment!(reps, "e14_prop11", kpa_bench::e14_prop11);
    bench_experiment!(reps, "e15_two_aces", kpa_bench::e15_two_aces);
    bench_experiment!(reps, "e16_embedding", kpa_bench::e16_embedding);
    bench_experiment!(reps, "e17_extensions", kpa_bench::e17_extensions);
    bench_experiment!(reps, "e18_scheduler", kpa_bench::e18_scheduler);
    bench_experiment!(
        reps,
        "e19_rational_opponents",
        kpa_bench::e19_rational_opponents
    );
    bench_experiment!(reps, "e20_leaky_prover", kpa_bench::e20_leaky_prover);
    bench_experiment!(reps, "e21_election", kpa_bench::e21_election);
    bench_experiment!(reps, "e22_monty_hall", kpa_bench::e22_monty_hall);
}
