//! The size ladder: per-point throughput from 10⁴ to 10⁶ (and,
//! opt-in, 10⁷) points.
//!
//! Every other bench tops out at ~11k points; this one builds the
//! asynchronous coin-toss system at three (optionally four) rungs —
//! `async_coin_tosses(n)` has 2ⁿ runs × (n+1) times, so n = 10/13/16/19
//! lands at 1.1×10⁴ / 1.1×10⁵ / 1.1×10⁶ / 1.0×10⁷ points — and times
//! four workloads per rung, reporting each as points per second so the
//! rungs are comparable:
//!
//! * `sat` — a fresh boolean/temporal model check;
//! * `knows` — a fresh `K_i φ` class sweep;
//! * `pr_family` — one batched `Pr_i ≥ α₁…α₄ φ` sweep;
//! * `measure` — dense `measure_interval` over the planned spaces.
//!
//! A fifth row pair pits the wide, footprint-skipping `PointSet` kernel
//! against the scalar full-span `narrow_*` reference on a
//! knows-sweep-shaped workload (class subset test + accumulate) over a
//! synthetic universe of the same rung size. The two paths are asserted
//! bit-identical first and timed second; at the 10⁶ rung the wide path
//! must win by ≥ 2× (the `ladder_wide_vs_narrow_1e6` gate in
//! `scripts/check_bench.py`, profile `scale`).
//!
//! The 10⁷ rung is wired but **off by default** (`KPA_LADDER_1E7=1`
//! enables it): building it takes tens of seconds and the CI container
//! has one CPU, so the default ladder keeps the bench-smoke step fast
//! while the rung stays one environment variable away. Its speedup
//! keys are `excluded` in the gate profile for the same reason.
//!
//! Run with `cargo bench -p kpa-bench --bench ladder`. Set
//! `KPA_BENCH_JSON=BENCH_9.json` (or use `scripts/bench.sh`) to emit
//! the rows as machine-readable JSON.

use kpa_assign::{Assignment, ProbAssignment};
use kpa_logic::{Formula, Model};
use kpa_measure::{rat, Rat};
use kpa_protocols::async_coin_tosses;
use kpa_system::{AgentId, PointIndex, PointSet};
use std::sync::Arc;
use std::time::Duration;

/// One ladder rung: the display label (`1e4`…) and the coin count `n`
/// (2ⁿ runs × (n+1) times).
struct Rung {
    label: &'static str,
    coins: usize,
}

/// The deterministic xorshift64* the workspace uses in lieu of a rand
/// dependency; seeds the synthetic φ sets so every run times the same
/// bits.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The class-sweep fixture for the wide-vs-narrow rows: `classes`
/// partition a synthetic universe of ~`total` points into 256
/// contiguous, footprint-tight sets (the shape `knows_set` sweeps), and
/// `phi` holds a pseudo-random half of the points of every 8th class —
/// so some subset tests succeed, most fail, and both paths do the same
/// accumulations.
struct SweepFixture {
    classes: Vec<PointSet>,
    phi: PointSet,
    empty: PointSet,
}

fn sweep_fixture(total: usize) -> SweepFixture {
    let horizon = 15;
    let runs = total / (horizon + 1);
    let index = Arc::new(PointIndex::new(vec![runs], horizon));
    let n = index.total();
    let class_count = 256.min(n);
    let per = n / class_count;
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    let mut classes = Vec::with_capacity(class_count);
    let mut phi = PointSet::empty(Arc::clone(&index));
    for k in 0..class_count {
        let lo = k * per;
        let hi = if k + 1 == class_count { n } else { lo + per };
        let mut class = PointSet::empty(Arc::clone(&index));
        for i in lo..hi {
            class.insert(index.point_at(i));
            // Every 8th class is fully φ (its subset test succeeds);
            // elsewhere φ keeps a random half, so the test fails after
            // real work.
            if k % 8 == 0 || rng.next().is_multiple_of(2) {
                phi.insert(index.point_at(i));
            }
        }
        if k % 8 != 0 {
            // Guarantee at least one miss so the subset test is false.
            phi.remove(index.point_at(lo));
        }
        classes.push(class);
    }
    let empty = PointSet::empty(index);
    SweepFixture {
        classes,
        phi,
        empty,
    }
}

impl SweepFixture {
    /// The wide, footprint-skipping sweep: the engine's own ops.
    fn wide(&self) -> (PointSet, usize) {
        let mut acc = self.empty.clone();
        let mut inter = 0usize;
        for class in &self.classes {
            if class.is_subset(&self.phi) {
                acc.union_with(class);
            } else {
                inter += class.intersection_len(&self.phi);
            }
        }
        (acc, inter)
    }

    /// The same sweep through the scalar full-span reference ops.
    fn narrow(&self) -> (PointSet, usize) {
        let mut acc = self.empty.clone();
        let mut inter = 0usize;
        for class in &self.classes {
            if class.narrow_is_subset(&self.phi) {
                acc.narrow_union_with(class);
            } else {
                inter += class.narrow_intersection_len(&self.phi);
            }
        }
        (acc, inter)
    }
}

fn main() {
    let reps = kpa_bench::default_reps();
    let mut rows: Vec<(String, Duration)> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut max_points = 0usize;

    let mut rungs = vec![
        Rung {
            label: "1e4",
            coins: 10,
        },
        Rung {
            label: "1e5",
            coins: 13,
        },
        Rung {
            label: "1e6",
            coins: 16,
        },
    ];
    // The 10⁷ rung: present in the ladder, excluded from the default
    // run (and from the gate) — see the module docs.
    if std::env::var("KPA_LADDER_1E7").is_ok_and(|v| !v.is_empty() && v != "0") {
        rungs.push(Rung {
            label: "1e7",
            coins: 19,
        });
    }

    let p1 = AgentId(0);
    let p2 = AgentId(1);
    let alphas: Vec<Rat> = (1..=4).map(|k| Rat::new(k, 4)).collect();

    for rung in &rungs {
        let Rung { label, coins } = *rung;
        let sys = async_coin_tosses(coins).expect("builds");
        let n_points = sys.points().count();
        max_points = max_points.max(n_points);
        println!("── rung {label}: {n_points} points (n = {coins}) ──");

        // ---- wide vs narrow set algebra ---------------------------
        let fx = sweep_fixture(n_points);
        let (wide_set, wide_n) = fx.wide();
        let (narrow_set, narrow_n) = fx.narrow();
        assert_eq!(
            wide_set, narrow_set,
            "wide and narrow sweeps must be bit-identical ({label})"
        );
        assert_eq!(wide_n, narrow_n, "intersection counts must agree ({label})");
        assert!(
            wide_set.footprint_is_valid(),
            "footprint invariant ({label})"
        );
        let wide_t =
            kpa_bench::bench_time(&format!("ladder_sweep/wide/{label}"), reps, || fx.wide().1);
        let narrow_t = kpa_bench::bench_time(&format!("ladder_sweep/narrow/{label}"), reps, || {
            fx.narrow().1
        });
        rows.push((format!("ladder_sweep/wide/{label}"), wide_t));
        rows.push((format!("ladder_sweep/narrow/{label}"), narrow_t));
        let ratio = narrow_t.as_secs_f64() / wide_t.as_secs_f64();
        speedups.push((format!("ladder_wide_vs_narrow_{label}"), ratio));
        println!("  wide vs narrow: {ratio:.1}×");
        if label == "1e6" {
            assert!(
                ratio >= 2.0,
                "wide kernel must be ≥ 2× the narrow reference at 10⁶ points (got {ratio:.2}×)"
            );
        }

        // ---- model workloads --------------------------------------
        let post = ProbAssignment::new(&sys, Assignment::post());
        // Warm the one-time per-agent plan so the throughput rows time
        // steady-state sweeps, not the amortized plan build.
        let _ = post.sample_plan(p1);

        let f_sat = Formula::prop("recent=h").implies(Formula::prop("recent=t").eventually());
        let sat_t = kpa_bench::bench_time(&format!("ladder_sat/{label}"), reps, || {
            // Fresh model per pass so the formula cache cannot help.
            Model::new(&post).sat(&f_sat).expect("model checks").len()
        });
        rows.push((format!("ladder_sat/{label}"), sat_t));
        speedups.push((
            format!("sat_pts_per_s_{label}"),
            n_points as f64 / sat_t.as_secs_f64(),
        ));

        let f_knows = Formula::prop("recent=h").known_by(p2);
        let knows_t = kpa_bench::bench_time(&format!("ladder_knows/{label}"), reps, || {
            Model::new(&post).sat(&f_knows).expect("model checks").len()
        });
        rows.push((format!("ladder_knows/{label}"), knows_t));
        speedups.push((
            format!("knows_pts_per_s_{label}"),
            n_points as f64 / knows_t.as_secs_f64(),
        ));

        let body = Formula::prop("recent=h");
        let family_t = kpa_bench::bench_time(&format!("ladder_pr_family/{label}"), reps, || {
            Model::new(&post)
                .pr_ge_family(p1, &alphas, &body)
                .expect("model checks")
                .len()
        });
        rows.push((format!("ladder_pr_family/{label}"), family_t));
        speedups.push((
            format!("pr_family_pts_per_s_{label}"),
            n_points as f64 / family_t.as_secs_f64(),
        ));

        // Dense measure over the planned spaces: the first 24 distinct
        // spaces (ptr-distinct, as in the kernel bench — capped so the
        // row stays a fixed-size probe at every rung), three query
        // shapes each.
        let mut spaces = Vec::new();
        for c in sys.points() {
            let s = post.space(p1, c).expect("space builds");
            if !spaces.iter().any(|d| Arc::ptr_eq(d, &s)) {
                spaces.push(s);
                if spaces.len() >= 24 {
                    break;
                }
            }
        }
        assert!(!spaces.is_empty(), "plan must cover some points ({label})");
        let phi_set = sys.points_satisfying(sys.prop_id("recent=h").expect("prop"));
        let queries = [phi_set.clone(), phi_set.complement(), sys.full_points()];
        let measure_t = kpa_bench::bench_time(&format!("ladder_measure/{label}"), reps, || {
            let mut acc = Rat::ZERO;
            for s in &spaces {
                for q in &queries {
                    let (lo, hi) = s.measure_interval(q);
                    acc += lo;
                    acc += hi;
                }
            }
            acc
        });
        rows.push((format!("ladder_measure/{label}"), measure_t));
        speedups.push((
            format!("measure_pts_per_s_{label}"),
            n_points as f64 / measure_t.as_secs_f64(),
        ));

        // Per-rung identity spot check: the engine's own `pr_ge` result
        // is consistent with the family sweep (same α, same φ).
        let single = Model::new(&post)
            .sat(&body.clone().pr_ge(p1, rat!(1 / 2)))
            .expect("model checks");
        let family = Model::new(&post)
            .pr_ge_family(p1, &alphas, &body)
            .expect("model checks");
        assert_eq!(
            *single, *family[1],
            "family member α = 1/2 must equal the single sweep ({label})"
        );
    }

    println!(
        "\nladder complete: {} rungs, {max_points} max points",
        rungs.len()
    );

    // ------------------------------------------------------------------
    // Machine-readable rows (BENCH_9.json) when KPA_BENCH_JSON is set —
    // see scripts/bench.sh.
    // ------------------------------------------------------------------
    if let Ok(path) = std::env::var("KPA_BENCH_JSON") {
        let mut out = String::from("{\n  \"bench\": \"scale\",\n");
        out.push_str(&format!(
            "  \"points\": {max_points},\n  \"reps\": {reps},\n"
        ));
        out.push_str("  \"rows\": [\n");
        for (i, (label, d)) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": \"{label}\", \"seconds\": {}}}{comma}\n",
                d.as_secs_f64()
            ));
        }
        out.push_str("  ],\n  \"speedups\": {\n");
        for (i, (key, v)) in speedups.iter().enumerate() {
            let comma = if i + 1 == speedups.len() { "" } else { "," };
            out.push_str(&format!("    \"{key}\": {v}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        std::fs::write(&path, &out).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
