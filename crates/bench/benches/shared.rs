//! Concurrent-query benchmark of the shared `Arc<ModelArtifact>` path.
//!
//! PR 6 split the borrowing `Model` facade into an immutable,
//! `Send + Sync` [`ModelArtifact`] (system + assignment + canonical
//! spaces + sample plans, built once) and cheap per-query [`EvalCtx`]
//! handles, with every memo behind 16-way sharded maps instead of
//! global mutexes. This bench pins the two claims that refactor makes:
//!
//! 1. **Shared-artifact throughput** — N client threads issuing a mixed
//!    sat / `Pr_i ≥ α` formula family against *one* shared artifact,
//!    answered from the warm sharded memos. The outputs are asserted
//!    bit-identical to the serial `Model` facade before anything is
//!    timed, and the 4-thread row's aggregate query rate is exported as
//!    `shared_artifact_qps` (host-dependent; the gate only requires it
//!    to exist and be positive).
//!
//! 2. **Sharded memo vs. global mutex** — the same 4-thread overlapping
//!    get/insert workload hammered at a 16-shard [`ShardMap`] and at a
//!    1-shard map, which *is* the old single-mutex memo (same code
//!    path, one lock). The ratio is exported as
//!    `sharded_memo_vs_mutex`; on multi-core hosts sharding wins by
//!    separating the threads, on a single core it must simply not
//!    regress (the gate is relative to the committed baseline).
//!
//! `shared_threads4_vs_1` rides along for inspection but is excluded
//! from gating — like `par_sat_threads4_vs_1` in the kernel bench it
//! measures core-count scaling, which legitimately sits near 1× on
//! single-core runners.
//!
//! After the timed sections, a traced pass re-runs the 4-thread
//! workload against a fresh artifact under `kpa-trace` and reports the
//! per-map shard hit/miss/contention counters — proving the sharded
//! maps (not some bypass) answered the queries.
//!
//! Run with `cargo bench -p kpa-bench --bench shared`. Set
//! `KPA_BENCH_JSON=BENCH_6.json` (or use `scripts/bench.sh`) to emit
//! the rows as machine-readable JSON.

use kpa_assign::{Assignment, ProbAssignment, ShardMap};
use kpa_logic::{Formula, Model, ModelArtifact};
use kpa_measure::rat;
use kpa_protocols::async_coin_tosses;
use kpa_system::{AgentId, System};
use std::sync::Arc;

/// Client threads sharing one artifact in the timed rows.
const CLIENTS: usize = 4;

/// Warm family passes per client per timed pass: enough that the
/// per-pass thread-spawn cost is noise next to the memo lookups.
const ROUNDS: usize = 100;

/// Hammer threads and per-thread operations for the ShardMap rows.
const HAMMER_THREADS: usize = 4;
const HAMMER_OPS: usize = 20_000;
const HAMMER_KEYS: u64 = 512;

/// The mixed query family every client repeats: sat, knowledge,
/// common knowledge, and two `Pr` thresholds over one body, so the
/// clients collide on the formula cache, the `knows_set` memo, the
/// `Pr` memo, and the plan table at once.
fn formula_family(sys: &System) -> Vec<Formula> {
    let p = Formula::prop("recent=h");
    let q = Formula::prop("c0=h");
    let a0 = AgentId(0);
    let a1 = AgentId(sys.agent_count().saturating_sub(1));
    let group: Vec<AgentId> = (0..sys.agent_count()).map(AgentId).collect();
    vec![
        p.clone(),
        p.clone().known_by(a1),
        p.clone().known_by(a1).common(group.iter().copied()),
        p.clone().pr_ge(a0, rat!(1 / 4)),
        p.clone().pr_ge(a0, rat!(3 / 4)),
        q.clone().eventually(),
        Formula::or([p, q]).known_by(a0),
    ]
}

/// One full client workload: a fresh context over the shared artifact,
/// `ROUNDS` passes over the family (rotated per client so no two
/// clients agree on the order), returning a checksum of result sizes.
fn client_pass(artifact: &Arc<ModelArtifact>, family: &[Formula], client: usize) -> usize {
    let ctx = artifact.ctx();
    let n = family.len();
    let mut sum = 0usize;
    for round in 0..ROUNDS {
        for k in 0..n {
            let i = (k + client + round) % n;
            sum += ctx.sat(&family[i]).expect("model checks").len();
        }
    }
    sum
}

/// Spawns `threads` clients against the artifact and waits for all of
/// them; each client pins its own pool width to 1 so the row measures
/// memo throughput, not intra-query parallelism.
fn shared_pass(artifact: &Arc<ModelArtifact>, family: &[Formula], threads: usize) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|client| {
                let artifact = Arc::clone(artifact);
                let family = family.to_vec();
                scope.spawn(move || {
                    kpa_pool::with_threads(1, || client_pass(&artifact, &family, client))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    })
}

/// One hammer pass: `HAMMER_THREADS` threads interleaving lookups and
/// first-insert-wins inserts over an overlapping key space on a fresh
/// map with the given shard count. A 1-shard map is the global-mutex
/// memo the refactor replaced; 16 shards is the artifact's layout.
fn hammer_pass(name: &'static str, shards: usize) -> usize {
    let map: ShardMap<u64, Arc<u64>> = ShardMap::with_shards(name, shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..HAMMER_THREADS)
            .map(|t| {
                let map = &map;
                scope.spawn(move || {
                    let mut found = 0usize;
                    for j in 0..HAMMER_OPS {
                        let key =
                            (j as u64).wrapping_mul(17).wrapping_add(t as u64 * 7) % HAMMER_KEYS;
                        match map.get(&key) {
                            Some(v) => found += *v as usize,
                            None => {
                                map.insert_or_get(key, Arc::new(key));
                            }
                        }
                    }
                    found
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("hammer")).sum()
    })
}

fn main() {
    let reps = kpa_bench::default_reps();

    // ------------------------------------------------------------------
    // Correctness first: the shared artifact must agree bit-for-bit
    // with the serial borrowing facade before any row is timed.
    // ------------------------------------------------------------------
    let sys = async_coin_tosses(8).expect("builds");
    let n_points = sys.points().count();
    let family = formula_family(&sys);
    let pa = ProbAssignment::new(&sys, Assignment::post());
    let serial = Model::new(&pa);
    let artifact = Arc::new(ModelArtifact::new(
        Arc::new(sys.clone()),
        Assignment::post(),
    ));
    let ctx = artifact.ctx();
    for f in &family {
        let want = serial.sat(f).expect("serial model checks");
        let got = ctx.sat(f).expect("shared model checks");
        assert_eq!(
            want.as_words(),
            got.as_words(),
            "artifact diverged from the serial facade on {f}"
        );
    }
    assert!(artifact.sat_cache_len() >= family.len());
    assert_eq!(artifact.plans_built(), sys.agent_count());
    println!(
        "identity check: {} formulas bit-identical on {} points (serial facade vs shared artifact)\n",
        family.len(),
        n_points
    );

    // ------------------------------------------------------------------
    // Shared-artifact throughput: 1 client vs CLIENTS clients against
    // the same warm artifact. The warm-up inside bench_time performs
    // the cold pass, so the timed passes measure the steady state a
    // query service would run in.
    // ------------------------------------------------------------------
    let mut rows: Vec<(String, std::time::Duration)> = Vec::new();
    let queries_per_client = (ROUNDS * family.len()) as f64;
    let t1 = kpa_bench::bench_time(
        &format!("shared_queries/threads=1/{n_points}"),
        reps,
        || shared_pass(&artifact, &family, 1),
    );
    let t4 = kpa_bench::bench_time(
        &format!("shared_queries/threads={CLIENTS}/{n_points}"),
        reps,
        || shared_pass(&artifact, &family, CLIENTS),
    );
    rows.push((format!("shared_queries/threads=1/{n_points}"), t1));
    rows.push((format!("shared_queries/threads={CLIENTS}/{n_points}"), t4));
    let qps = queries_per_client * CLIENTS as f64 / t4.as_secs_f64();
    let thread_scaling = t1.as_secs_f64() / t4.as_secs_f64();
    println!(
        "\nshared artifact: {qps:.0} queries/s aggregate across {CLIENTS} clients \
         ({thread_scaling:.2}x vs 1 client; core-count dependent)"
    );
    assert!(
        qps > 0.0,
        "the shared-artifact row must complete queries (got {qps} qps)"
    );

    // ------------------------------------------------------------------
    // Sharded memo vs global mutex: the identical hammer workload on a
    // 16-shard map and on a 1-shard map (= one mutex around one
    // HashMap, the pre-refactor memo layout).
    // ------------------------------------------------------------------
    let check16 = hammer_pass("bench.hammer_check16", 16);
    let check1 = hammer_pass("bench.hammer_check1", 1);
    assert_eq!(
        check16, check1,
        "shard count must be observationally invisible"
    );
    let sharded = kpa_bench::bench_time(
        &format!("memo_hammer/shards=16/{HAMMER_KEYS}"),
        reps,
        || hammer_pass("bench.hammer16", 16),
    );
    let mutexed =
        kpa_bench::bench_time(&format!("memo_hammer/shards=1/{HAMMER_KEYS}"), reps, || {
            hammer_pass("bench.hammer1", 1)
        });
    rows.push((format!("memo_hammer/shards=16/{HAMMER_KEYS}"), sharded));
    rows.push((format!("memo_hammer/shards=1/{HAMMER_KEYS}"), mutexed));
    let shard_speedup = mutexed.as_secs_f64() / sharded.as_secs_f64();
    println!(
        "\nsharded memo speedup: {shard_speedup:.2}x \
         (16 shards vs 1-shard mutex, {HAMMER_THREADS} threads)"
    );
    assert!(
        shard_speedup >= 0.5,
        "sharding must not cripple the memo even on one core (got {shard_speedup:.2}x)"
    );

    // ------------------------------------------------------------------
    // Traced pass: re-run the 4-client workload against a FRESH
    // artifact with kpa-trace on, so the shard counters show both the
    // cold misses and the warm hits, then report per-map totals. Runs
    // strictly after every timed section.
    // ------------------------------------------------------------------
    kpa_trace::Trace::enabled(true);
    kpa_trace::registry().reset();
    let before = kpa_trace::registry().snapshot();
    let traced_artifact = Arc::new(ModelArtifact::new(
        Arc::new(sys.clone()),
        Assignment::post(),
    ));
    let _ = shared_pass(&traced_artifact, &family, CLIENTS);
    let after = kpa_trace::registry().snapshot();
    let deltas = after.delta_counters(&before);
    println!();
    let mut sat_cache_hits = 0u64;
    for prefix in ["logic.sat_cache", "logic.subterm_memo", "logic.pr_memo"] {
        let hits: u64 = deltas
            .iter()
            .filter(|(k, _)| k.starts_with(prefix) && k.contains(".shard") && k.ends_with(".hit"))
            .map(|(_, v)| v)
            .sum();
        let misses: u64 = deltas
            .iter()
            .filter(|(k, _)| k.starts_with(prefix) && k.contains(".shard") && k.ends_with(".miss"))
            .map(|(_, v)| v)
            .sum();
        let contention = deltas
            .get(&format!("{prefix}.contention"))
            .copied()
            .unwrap_or(0);
        println!(
            "traced {prefix:<18} {hits:>8} shard hits  {misses:>6} misses  {contention:>4} contended locks"
        );
        if prefix == "logic.sat_cache" {
            sat_cache_hits = hits;
        }
    }
    assert!(
        sat_cache_hits > 0,
        "the warm clients must answer from the sharded formula cache"
    );
    kpa_trace::Trace::enabled(false);

    // ------------------------------------------------------------------
    // Machine-readable rows (BENCH_6.json) when KPA_BENCH_JSON is set —
    // see scripts/bench.sh.
    // ------------------------------------------------------------------
    if let Ok(path) = std::env::var("KPA_BENCH_JSON") {
        let mut out = String::from("{\n  \"bench\": \"shared\",\n");
        out.push_str(&format!("  \"points\": {n_points},\n  \"reps\": {reps},\n"));
        out.push_str("  \"rows\": [\n");
        for (i, (label, d)) in rows.iter().enumerate() {
            let comma = if i + 1 == rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": \"{label}\", \"seconds\": {}}}{comma}\n",
                d.as_secs_f64()
            ));
        }
        out.push_str("  ],\n  \"speedups\": {\n");
        out.push_str(&format!("    \"shared_artifact_qps\": {qps},\n"));
        out.push_str(&format!(
            "    \"shared_threads4_vs_1\": {thread_scaling},\n"
        ));
        out.push_str(&format!("    \"sharded_memo_vs_mutex\": {shard_speedup}\n"));
        out.push_str("  }\n}\n");
        std::fs::write(&path, &out).unwrap_or_else(|e| panic!("failed to write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
