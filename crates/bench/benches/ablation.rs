//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! greedy extremal cuts vs exhaustive enumeration, per-class space
//! caching vs rebuilding, and class-grouped knowledge evaluation vs the
//! naive per-point definition. Plain `main()` harness timed with
//! `std::time`; run with `cargo bench -p kpa-bench --bench ablation`.

use kpa_assign::{Assignment, ProbAssignment};
use kpa_asynchrony::{region_for, CutClass};
use kpa_logic::Model;
use kpa_measure::Rat;
use kpa_protocols::{async_coin_tosses, recent_heads};
use kpa_system::{AgentId, PointId, TreeId};

/// Greedy per-run extremal cuts (the Proposition 10 construction)
/// versus exhaustively enumerating every cut. The greedy bounds are
/// exact; enumeration exists only as a cross-check and its cost grows
/// as ∏ per-run choices.
fn bench_cut_bounds(reps: u32) {
    for n in [2usize, 3] {
        let sys = async_coin_tosses(n).expect("builds");
        let phi = recent_heads(&sys);
        let p1 = AgentId(0);
        let at = PointId {
            tree: TreeId(0),
            run: 0,
            time: 1,
        };
        let region = region_for(&sys, p1, p1, at);
        kpa_bench::bench_time(&format!("ablation_cut_bounds/greedy/{n}"), reps, || {
            CutClass::AllPoints.bounds(&sys, &region, &phi).unwrap()
        });
        kpa_bench::bench_time(&format!("ablation_cut_bounds/enumerate/{n}"), reps, || {
            let cuts = CutClass::AllPoints
                .enumerate_cuts(&sys, &region, 1 << 20)
                .unwrap();
            cuts.iter()
                .map(|cut| cut.prob(&sys, &phi).unwrap())
                .fold(Rat::ONE, Rat::min)
        });
    }
}

/// Reusing one `ProbAssignment` (whose per-class space cache warms up)
/// versus constructing a fresh one per query.
fn bench_space_caching(reps: u32) {
    let sys = async_coin_tosses(7).expect("builds");
    let phi = recent_heads(&sys);
    let p1 = AgentId(0);
    kpa_bench::bench_time("ablation_space_caching/cached", reps, || {
        let post = ProbAssignment::new(&sys, Assignment::post());
        let mut acc = Rat::ZERO;
        for c in sys.points().take(64) {
            acc += post.inner(p1, c, &phi).unwrap();
        }
        acc
    });
    kpa_bench::bench_time("ablation_space_caching/uncached", reps, || {
        let mut acc = Rat::ZERO;
        for c in sys.points().take(64) {
            // A fresh assignment per query defeats the cache.
            let post = ProbAssignment::new(&sys, Assignment::post());
            acc += post.inner(p1, c, &phi).unwrap();
        }
        acc
    });
}

/// The model checker's class-grouped `Kᵢ` evaluation versus the naive
/// per-point definition (`∀d ~i c: d ∈ sat`).
fn bench_knowledge_evaluation(reps: u32) {
    let sys = async_coin_tosses(7).expect("builds");
    let phi = recent_heads(&sys);
    let p2 = AgentId(1);
    let post = ProbAssignment::new(&sys, Assignment::post());
    let model = Model::new(&post);
    kpa_bench::bench_time("ablation_knowledge_evaluation/class_grouped", reps, || {
        model.knows_set(p2, &phi)
    });
    kpa_bench::bench_time(
        "ablation_knowledge_evaluation/naive_per_point",
        reps,
        || {
            let mut acc = sys.empty_points();
            for c in sys.points() {
                if sys.indistinguishable(p2, c).iter().all(|d| phi.contains(d)) {
                    acc.insert(c);
                }
            }
            acc
        },
    );
}

fn main() {
    let reps = kpa_bench::default_reps();
    println!("ablation benchmarks (best of {reps})\n");
    bench_cut_bounds(reps);
    bench_space_caching(reps);
    bench_knowledge_evaluation(reps);
}
