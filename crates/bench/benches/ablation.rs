//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! greedy extremal cuts vs exhaustive enumeration, per-class space
//! caching vs rebuilding, and class-grouped knowledge evaluation vs the
//! naive per-point definition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpa_assign::{Assignment, ProbAssignment};
use kpa_asynchrony::{region_for, CutClass};
use kpa_logic::{Model, PointSet};
use kpa_measure::Rat;
use kpa_protocols::{async_coin_tosses, recent_heads};
use kpa_system::{AgentId, PointId, TreeId};
use std::hint::black_box;

/// Greedy per-run extremal cuts (the Proposition 10 construction)
/// versus exhaustively enumerating every cut. The greedy bounds are
/// exact; enumeration exists only as a cross-check and its cost grows
/// as ∏ per-run choices.
fn bench_cut_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cut_bounds");
    group.sample_size(10);
    for n in [2usize, 3] {
        let sys = async_coin_tosses(n).expect("builds");
        let phi = recent_heads(&sys);
        let p1 = AgentId(0);
        let at = PointId {
            tree: TreeId(0),
            run: 0,
            time: 1,
        };
        let region = region_for(&sys, p1, p1, at);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| black_box(CutClass::AllPoints.bounds(&sys, &region, &phi).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("enumerate", n), &n, |b, _| {
            b.iter(|| {
                let cuts = CutClass::AllPoints
                    .enumerate_cuts(&sys, &region, 1 << 20)
                    .unwrap();
                let lo = cuts
                    .iter()
                    .map(|cut| cut.prob(&sys, &phi).unwrap())
                    .fold(Rat::ONE, Rat::min);
                black_box(lo)
            });
        });
    }
    group.finish();
}

/// Reusing one `ProbAssignment` (whose per-class space cache warms up)
/// versus constructing a fresh one per query.
fn bench_space_caching(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_space_caching");
    group.sample_size(10);
    let sys = async_coin_tosses(7).expect("builds");
    let phi = recent_heads(&sys);
    let p1 = AgentId(0);
    group.bench_function("cached", |b| {
        b.iter(|| {
            let post = ProbAssignment::new(&sys, Assignment::post());
            let mut acc = Rat::ZERO;
            for c in sys.points().take(64) {
                acc += post.inner(p1, c, &phi).unwrap();
            }
            black_box(acc)
        });
    });
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let mut acc = Rat::ZERO;
            for c in sys.points().take(64) {
                // A fresh assignment per query defeats the cache.
                let post = ProbAssignment::new(&sys, Assignment::post());
                acc += post.inner(p1, c, &phi).unwrap();
            }
            black_box(acc)
        });
    });
    group.finish();
}

/// The model checker's class-grouped `Kᵢ` evaluation versus the naive
/// per-point definition (`∀d ~i c: d ∈ sat`).
fn bench_knowledge_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_knowledge_evaluation");
    group.sample_size(10);
    let sys = async_coin_tosses(7).expect("builds");
    let phi = recent_heads(&sys);
    let p2 = AgentId(1);
    let post = ProbAssignment::new(&sys, Assignment::post());
    let model = Model::new(&post);
    group.bench_function("class_grouped", |b| {
        b.iter(|| black_box(model.knows_set(p2, &phi)));
    });
    group.bench_function("naive_per_point", |b| {
        b.iter(|| {
            let mut acc = PointSet::new();
            for c in sys.points() {
                if sys.indistinguishable(p2, c).iter().all(|d| phi.contains(d)) {
                    acc.insert(c);
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    ablation,
    bench_cut_bounds,
    bench_space_caching,
    bench_knowledge_evaluation
);
criterion_main!(ablation);
