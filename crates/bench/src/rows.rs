//! Experiment result rows: paper value vs. measured value.

use std::fmt;

/// One reproduced quantity: what the paper states vs. what this
/// implementation measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Experiment id (`E1`…`E16`, see `DESIGN.md` §6).
    pub experiment: &'static str,
    /// The quantity being reproduced.
    pub quantity: String,
    /// The paper's value, verbatim (exact rationals where it gives them).
    pub paper: String,
    /// The value this implementation computes.
    pub measured: String,
    /// Whether they agree exactly.
    pub matches: bool,
}

impl Row {
    /// Builds a row, computing `matches` by string equality.
    #[must_use]
    pub fn new(
        experiment: &'static str,
        quantity: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> Row {
        let paper = paper.into();
        let measured = measured.into();
        let matches = paper == measured;
        Row {
            experiment,
            quantity: quantity.into(),
            paper,
            measured,
            matches,
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<4} {:<58} paper: {:<22} measured: {:<22} {}",
            self.experiment,
            self.quantity,
            self.paper,
            self.measured,
            if self.matches { "ok" } else { "MISMATCH" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_compare_and_render() {
        let ok = Row::new("E1", "Pr(heads | bit=0)", "1/2", "1/2");
        assert!(ok.matches);
        assert!(ok.to_string().contains("ok"));
        let bad = Row::new("E1", "Pr(heads | bit=1)", "2/3", "1/2");
        assert!(!bad.matches);
        assert!(bad.to_string().contains("MISMATCH"));
    }
}
