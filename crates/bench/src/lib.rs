//! # kpa-bench — the experiment and benchmark harness
//!
//! Regenerates every worked example and numbered result of Halpern &
//! Tuttle, *"Knowledge, Probability, and Adversaries"* (JACM 40(4),
//! 1993) and compares against the paper's stated values.
//!
//! * `cargo run -p kpa-bench --bin experiments` prints the full
//!   paper-vs-measured table (E1–E16; recorded in `EXPERIMENTS.md`);
//! * `cargo bench -p kpa-bench` times each experiment family plus
//!   scaling benchmarks for the engine (system construction, model
//!   checking, safety decisions, cut bounds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiments;
mod rows;
mod timing;

pub use timing::{bench_time, default_reps};

pub use experiments::{
    all_experiments, e01_vardi, e02_footnote5, e03_primality, e04_attack_pointwise,
    e05_coin_post_fut, e06_die_subdivision, e07_lattice, e08_theorem7, e09_theorem8, e10_theorem9,
    e11_async_coins, e12_prop10, e13_pts_vs_state, e14_prop11, e15_two_aces, e16_embedding,
    e17_extensions, e18_scheduler, e19_rational_opponents, e20_leaky_prover, e21_election,
    e22_monty_hall,
};
pub use rows::Row;
