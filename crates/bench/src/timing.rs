//! Minimal timing harness for the `[[bench]]` targets.
//!
//! The build is hermetic (no external benchmark framework), so the
//! benches are plain `main()` binaries timed with [`std::time`]. Each
//! measurement runs one warm-up pass and reports the best of `reps`
//! timed passes — the usual "minimum is the least noisy estimator of
//! the true cost" convention.

use std::time::{Duration, Instant};

/// Number of timed repetitions: quick by default, longer sweeps under
/// `--features bench`.
#[must_use]
pub fn default_reps() -> u32 {
    if cfg!(feature = "bench") {
        10
    } else {
        3
    }
}

/// Times `f` (best of `reps` passes after one warm-up), prints a row
/// `label  best-time`, and returns the best duration.
pub fn bench_time<T>(label: &str, reps: u32, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    println!("{label:<48} {best:>12.2?}");
    best
}
