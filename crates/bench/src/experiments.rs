//! The experiment harness: every worked example and numbered result of
//! the paper, regenerated and compared against the stated values.
//!
//! The paper has no tables or figures; its "evaluation" is the set of
//! exact quantities and biconditionals listed in `DESIGN.md` §6 as
//! experiments E1–E16. Each function here recomputes one experiment and
//! returns paper-vs-measured [`Row`]s; `EXPERIMENTS.md` records the
//! output of [`all_experiments`].

use crate::rows::Row;
use kpa_assign::{lattice, Assignment, ProbAssignment};
use kpa_asynchrony::{class_interval, prop10_holds, pts_interval, CutClass};
use kpa_betting::{inner_expected_winnings, BetRule, BettingGame, Strategy};
use kpa_logic::{Formula, Model};
use kpa_measure::Rat;
use kpa_protocols as protocols;
use kpa_system::{AgentId, PointId, ProtocolBuilder, System, TreeId};

fn pt(tree: usize, run: usize, time: usize) -> PointId {
    PointId {
        tree: TreeId(tree),
        run,
        time,
    }
}

fn rat(n: i128, d: i128) -> Rat {
    Rat::new(n, d)
}

/// E1 — the Vardi input-bit example (§3): per-adversary coin
/// probabilities, and the uniform-prior number the paper refuses.
#[must_use]
pub fn e01_vardi() -> Vec<Row> {
    let sys = protocols::vardi_system().expect("vardi system builds");
    let heads = sys.points_satisfying(sys.prop_id("heads").expect("prop"));
    let prior = ProbAssignment::new(&sys, Assignment::prior());
    let p2 = AgentId(1);
    let h0 = prior.prob(p2, pt(0, 0, 1), &heads).expect("prob");
    let h1 = prior.prob(p2, pt(1, 0, 1), &heads).expect("prob");
    vec![
        Row::new("E1", "Pr(heads) in the bit=0 tree", "1/2", h0.to_string()),
        Row::new("E1", "Pr(heads) in the bit=1 tree", "2/3", h1.to_string()),
        Row::new(
            "E1",
            "Pr(heads) under a uniform input prior (not adopted)",
            "7/12",
            protocols::vardi_heads_under_uniform_prior().to_string(),
        ),
    ]
}

/// E2 — footnote 5: the action event is nonmeasurable unfactored,
/// probability 1/2 in each factored subsystem.
#[must_use]
pub fn e02_footnote5() -> Vec<Row> {
    let space = protocols::footnote5_unfactored_space();
    let action = protocols::footnote5_action_event();
    let mut rows = vec![Row::new(
        "E2",
        "action-a measurable in the unfactored space",
        "no",
        if space.is_measurable(&action) {
            "yes"
        } else {
            "no"
        },
    )];
    let sys = protocols::footnote5_factored().expect("footnote5 system builds");
    let pts = protocols::footnote5_action_points(&sys);
    let prior = ProbAssignment::new(&sys, Assignment::prior());
    for tree in 0..2 {
        let p = prior.prob(AgentId(1), pt(tree, 0, 1), &pts).expect("prob");
        rows.push(Row::new(
            "E2",
            format!("Pr(action-a) in factored subsystem bit={tree}"),
            "1/2",
            p.to_string(),
        ));
    }
    rows
}

/// E3 — primality testing (§3): per-input error probabilities and the
/// Rabin (1/4)^t bound.
#[must_use]
pub fn e03_primality() -> Vec<Row> {
    let rounds = 4;
    let sys = protocols::primality_system(&[561, 13], rounds).expect("system builds");
    let error = sys.prop_id("error").expect("prop");
    let mut rows = Vec::new();
    for (input, is_prime) in [(561u64, false), (13, true)] {
        let tree = sys.tree_id(&format!("n={input}")).expect("tree");
        let horizon = sys.horizon();
        let measured: Rat = (0..sys.tree(tree).runs().len())
            .filter(|&run| {
                sys.holds(
                    error,
                    PointId {
                        tree,
                        run,
                        time: horizon,
                    },
                )
            })
            .map(|run| sys.tree(tree).runs()[run].prob())
            .sum();
        let paper = protocols::error_probability(input, rounds);
        rows.push(Row::new(
            "E3",
            format!("P(error) for n={input} with t={rounds} rounds"),
            paper.to_string(),
            measured.to_string(),
        ));
        if !is_prime {
            rows.push(Row::new(
                "E3",
                format!("P(error) for n={input} within Rabin's (1/4)^t"),
                "yes",
                if measured <= rat(1, 4).pow(rounds as i32) {
                    "yes"
                } else {
                    "no"
                },
            ));
        }
        rows.push(Row::new(
            "E3",
            format!("Miller-Rabin verdict for n={input}"),
            if is_prime { "prime" } else { "composite" },
            if protocols::miller_rabin(input) {
                "prime"
            } else {
                "composite"
            },
        ));
    }
    rows
}

/// E4 — §4's pointwise analysis of CA1 and CA2.
#[must_use]
pub fn e04_attack_pointwise() -> Vec<Row> {
    let mut rows = Vec::new();
    let ca1 = protocols::ca1(10, rat(1, 2)).expect("ca1 builds");
    let ca2 = protocols::ca2(10, rat(1, 2)).expect("ca2 builds");
    for (name, sys) in [("CA1", &ca1), ("CA2", &ca2)] {
        rows.push(Row::new(
            "E4",
            format!("{name}: P(coordinated) over the runs >= .99"),
            "2047/2048",
            protocols::coordination_run_probability(sys).to_string(),
        ));
    }
    // CA1: a point where A knows the attack will fail.
    let a = ca1.agent_id("A").expect("agent");
    let post = ProbAssignment::new(&ca1, Assignment::post());
    let model = Model::new(&post);
    let certain_failure = model
        .sat(&protocols::coordination_formula().not().known_by(a))
        .expect("model checks");
    rows.push(Row::new(
        "E4",
        "CA1: a point where A is certain of failure exists",
        "yes",
        if certain_failure.is_empty() {
            "no"
        } else {
            "yes"
        },
    ));
    // CA2: B's posterior confidence when it hears nothing.
    let b = ca2.agent_id("B").expect("agent");
    let post2 = ProbAssignment::new(&ca2, Assignment::post());
    let coord = protocols::coordinated_points(&ca2);
    let silent = pt(0, 1, ca2.horizon());
    rows.push(Row::new(
        "E4",
        "CA2: B's Pr(coordinated | no message)",
        "1024/1025",
        post2.prob(b, silent, &coord).expect("prob").to_string(),
    ));
    rows
}

/// E5 — the introduction's coin under `post` vs `fut`.
#[must_use]
pub fn e05_coin_post_fut() -> Vec<Row> {
    let sys = protocols::secret_coin().expect("system builds");
    let heads = Formula::prop("c=h");
    let p1 = AgentId(0);
    let post = ProbAssignment::new(&sys, Assignment::post());
    let m_post = Model::new(&post);
    let knows_half = heads.clone().k_interval(p1, rat(1, 2), rat(1, 2));
    let post_ok = m_post
        .holds_at(&knows_half, pt(0, 0, 1))
        .expect("model checks")
        && m_post
            .holds_at(&knows_half, pt(0, 1, 1))
            .expect("model checks");

    let fut = ProbAssignment::new(&sys, Assignment::fut());
    let m_fut = Model::new(&fut);
    let zero_or_one = Formula::or([
        heads.clone().pr_ge(p1, Rat::ONE),
        heads.clone().not().pr_ge(p1, Rat::ONE),
    ])
    .known_by(p1);
    let fut_disj = m_fut
        .holds_at(&zero_or_one, pt(0, 0, 1))
        .expect("model checks");
    let fut_half = m_fut
        .holds_at(&knows_half, pt(0, 0, 1))
        .expect("model checks");
    vec![
        Row::new(
            "E5",
            "post: K1(Pr1(heads) = 1/2) after the toss",
            "holds",
            ok(post_ok),
        ),
        Row::new(
            "E5",
            "fut: K1(Pr1 = 1 or Pr1 = 0) after the toss",
            "holds",
            ok(fut_disj),
        ),
        Row::new(
            "E5",
            "fut: K1(Pr1(heads) = 1/2) after the toss",
            "fails",
            fails(!fut_half),
        ),
    ]
}

fn ok(b: bool) -> &'static str {
    if b {
        "holds"
    } else {
        "fails"
    }
}

fn fails(b: bool) -> &'static str {
    if b {
        "fails"
    } else {
        "holds"
    }
}

/// E6 — the die example (§5): undivided vs subdivided sample spaces.
#[must_use]
pub fn e06_die_subdivision() -> Vec<Row> {
    let sys = protocols::die_system().expect("system builds");
    let even = protocols::even_points(&sys);
    let p2 = AgentId(1);
    let post = ProbAssignment::new(&sys, Assignment::post());
    let sub = ProbAssignment::new(&sys, protocols::die_subdivided_assignment());
    let undivided = post.prob(p2, pt(0, 0, 1), &even).expect("prob");
    let low = sub.prob(p2, pt(0, 0, 1), &even).expect("prob");
    let high = sub.prob(p2, pt(0, 5, 1), &even).expect("prob");
    vec![
        Row::new("E6", "undivided: Pr2(even)", "1/2", undivided.to_string()),
        Row::new(
            "E6",
            "subdivided, die in {1,2,3}: Pr2(even)",
            "1/3",
            low.to_string(),
        ),
        Row::new(
            "E6",
            "subdivided, die in {4,5,6}: Pr2(even)",
            "2/3",
            high.to_string(),
        ),
    ]
}

/// E7 — Propositions 1, 2, 4, 5 and the canonical lattice chain.
#[must_use]
pub fn e07_lattice() -> Vec<Row> {
    let sys = protocols::die_system().expect("system builds");
    let fut = ProbAssignment::new(&sys, Assignment::fut());
    let opp3 = ProbAssignment::new(&sys, Assignment::opp(AgentId(2)));
    let post = ProbAssignment::new(&sys, Assignment::post());
    let prior = ProbAssignment::new(&sys, Assignment::prior());
    let chain =
        lattice::leq(&fut, &opp3) && lattice::leq(&opp3, &post) && lattice::leq(&post, &prior);
    let reqs = [&fut, &opp3, &post, &prior]
        .iter()
        .all(|pa| pa.satisfies_req1() && pa.satisfies_req2() && pa.is_standard());
    let consistent = fut.is_consistent() && opp3.is_consistent() && post.is_consistent();
    let prior_inconsistent = !prior.is_consistent();
    let p4 = lattice::refines_by_partition(&fut, &opp3)
        && lattice::refines_by_partition(&opp3, &post)
        && lattice::refines_by_partition(&post, &prior);
    let p5 = lattice::conditioning_agrees(&fut, &opp3).expect("spaces build")
        && lattice::conditioning_agrees(&opp3, &post).expect("spaces build")
        && lattice::conditioning_agrees(&post, &prior).expect("spaces build");
    vec![
        Row::new(
            "E7",
            "REQ1/REQ2 + standardness of all four assignments",
            "holds",
            ok(reqs),
        ),
        Row::new(
            "E7",
            "S^fut <= S^j <= S^post <= S^prior",
            "holds",
            ok(chain),
        ),
        Row::new(
            "E7",
            "post/fut/opp consistent; prior inconsistent",
            "holds",
            ok(consistent && prior_inconsistent),
        ),
        Row::new(
            "E7",
            "Proposition 4 (partition refinement)",
            "holds",
            ok(p4),
        ),
        Row::new(
            "E7",
            "Proposition 5 (conditioning identity)",
            "holds",
            ok(p5),
        ),
    ]
}

/// E8 — Theorem 7 and Proposition 6 over a threshold sweep.
#[must_use]
pub fn e08_theorem7() -> Vec<Row> {
    let sys = protocols::secret_coin().expect("system builds");
    let heads = sys.points_satisfying(sys.prop_id("c=h").expect("prop"));
    let alphas = [rat(1, 4), rat(1, 2), rat(2, 3), Rat::ONE];
    let mut t7 = true;
    let mut p6 = true;
    for i in 0..3 {
        for j in 0..3 {
            let game = BettingGame::new(&sys, AgentId(i), AgentId(j));
            for &alpha in &alphas {
                let rule = BetRule::new(heads.clone(), alpha).expect("valid threshold");
                t7 &= game.theorem7_holds(&rule).expect("decidable");
                p6 &= game.proposition6_holds(&rule).expect("decidable");
            }
        }
    }
    vec![
        Row::new(
            "E8",
            "Theorem 7: Bet(phi,a) safe <=> K_i^a phi (9 pairs x 4 a)",
            "holds",
            ok(t7),
        ),
        Row::new(
            "E8",
            "Proposition 6: Tree-safe <=> Tree^j-safe (synchronous)",
            "holds",
            ok(p6),
        ),
    ]
}

/// E9 — Theorem 8: assignments at or below `S^j` determine safe bets;
/// assignments above it (here `S^post` against a better-informed
/// opponent) license bets that lose money for some transition
/// probabilities.
#[must_use]
pub fn e09_theorem8() -> Vec<Row> {
    let mut part_a = true;
    let mut part_b = true;
    // Quantify over several transition-probability assignments τ (the
    // theorem's essential quantifier) by varying the coin bias.
    for bias in [rat(1, 2), rat(2, 3), rat(1, 3)] {
        let sys = ProtocolBuilder::new(["i", "j"])
            .coin("c", &[("h", bias), ("t", Rat::ONE - bias)], &["j"])
            .build()
            .expect("system builds");
        let i = AgentId(0);
        let j = AgentId(1);
        let heads = sys.points_satisfying(sys.prop_id("c=h").expect("prop"));
        let game = BettingGame::new(&sys, i, j);
        let fut = ProbAssignment::new(&sys, Assignment::fut());
        let post = ProbAssignment::new(&sys, Assignment::post());
        for alpha in [rat(1, 4), bias, Rat::ONE] {
            let rule = BetRule::new(heads.clone(), alpha).expect("valid threshold");
            let safe = game.safe_points(&rule).expect("decidable");
            // (a) S^fut <= S^j: every K^α point under fut is safe.
            let fut_model = Model::new(&fut);
            let k_fut = fut_model
                .pr_ge_set(i, alpha, &heads)
                .map(|s| fut_model.knows_set(i, &s))
                .expect("decidable");
            part_a &= k_fut.iter().all(|p| safe.contains(p));
            // (b) S^post not <= S^j: some K^α point under post is unsafe.
            let post_model = Model::new(&post);
            let k_post = post_model
                .pr_ge_set(i, alpha, &heads)
                .map(|s| post_model.knows_set(i, &s))
                .expect("decidable");
            if alpha == bias {
                part_b &= k_post.iter().any(|p| !safe.contains(p));
            }
        }
    }
    vec![
        Row::new(
            "E9",
            "Thm 8(a): S <= S^j determines safe bets (3 biases)",
            "holds",
            ok(part_a),
        ),
        Row::new(
            "E9",
            "Thm 8(b): S^post licenses unsafe bets vs informed p_j",
            "unsafe bet exists",
            if part_b {
                "unsafe bet exists"
            } else {
                "no unsafe bet"
            },
        ),
    ]
}

/// E10 — Theorem 9: interval monotonicity along the lattice, with the
/// die system exhibiting the strict sharpening.
#[must_use]
pub fn e10_theorem9() -> Vec<Row> {
    let sys = protocols::die_system().expect("system builds");
    let even = protocols::even_points(&sys);
    let p2 = AgentId(1);
    let fine = ProbAssignment::new(&sys, Assignment::opp(AgentId(2)));
    let coarse = ProbAssignment::new(&sys, Assignment::post());
    let c = pt(0, 0, 1);
    let fine_iv = fine.known_interval(p2, c, &even).expect("spaces build");
    let coarse_iv = coarse.known_interval(p2, c, &even).expect("spaces build");
    let monotone = coarse_iv.0 >= fine_iv.0 && coarse_iv.1 <= fine_iv.1;
    let strict = coarse_iv != fine_iv;
    vec![
        Row::new(
            "E10",
            "K-interval under post (higher assignment)",
            "[1/2, 1/2]",
            format!("[{}, {}]", coarse_iv.0, coarse_iv.1),
        ),
        Row::new(
            "E10",
            "K-interval under opp(p3) (lower assignment)",
            "[1/3, 2/3]",
            format!("[{}, {}]", fine_iv.0, fine_iv.1),
        ),
        Row::new(
            "E10",
            "Thm 9(a): higher assignment never widens",
            "holds",
            ok(monotone),
        ),
        Row::new(
            "E10",
            "Thm 9(b): strictly sharper here",
            "holds",
            ok(strict),
        ),
    ]
}

/// E11 — the §7 asynchronous coin system at n = 10.
#[must_use]
pub fn e11_async_coins() -> Vec<Row> {
    let n = 10;
    let sys = protocols::async_coin_tosses(n).expect("system builds");
    let phi = protocols::recent_heads(&sys);
    let p1 = AgentId(0);
    let c = pt(0, 0, 1);
    let post = ProbAssignment::new(&sys, Assignment::post());
    let (lo, hi) = post.interval(p1, c, &phi).expect("spaces build");
    let (clo, chi) =
        class_interval(&sys, p1, AgentId(1), c, &phi, &CutClass::Horizontal).expect("bounds");
    // The paper's "other line of reasoning": the S² (time-slice)
    // assignment makes the fact measurable at exactly 1/2.
    let slice = ProbAssignment::new(&sys, kpa_asynchrony::slice_assignment());
    let slice_prob = slice
        .prob(p1, c, &phi)
        .expect("measurable under the slice assignment");
    vec![
        Row::new(
            "E11",
            "clockless p1: inner measure of 'recent toss heads'",
            "1/1024",
            lo.to_string(),
        ),
        Row::new(
            "E11",
            "clockless p1: outer measure",
            "1023/1024",
            hi.to_string(),
        ),
        Row::new(
            "E11",
            "vs clocked p2: every horizontal cut gives",
            "[1/2, 1/2]",
            format!("[{clo}, {chi}]"),
        ),
        Row::new(
            "E11",
            "S² (time-slice) assignment: Pr1(recent toss heads)",
            "1/2",
            slice_prob.to_string(),
        ),
    ]
}

/// E12 — Proposition 10, plus an exact cut-enumeration cross-check.
#[must_use]
pub fn e12_prop10() -> Vec<Row> {
    let sys = protocols::async_coin_tosses(6).expect("system builds");
    let phi = protocols::recent_heads(&sys);
    let holds = prop10_holds(&sys, AgentId(0), &phi).expect("bounds");

    // Cross-check on n = 2 by enumerating all 16 cuts.
    let small = protocols::async_coin_tosses(2).expect("system builds");
    let phi2 = protocols::recent_heads(&small);
    let region = kpa_asynchrony::region_for(&small, AgentId(0), AgentId(0), pt(0, 0, 1));
    let cuts = CutClass::AllPoints
        .enumerate_cuts(&small, &region, 1 << 12)
        .expect("enumerable");
    let probs: Vec<Rat> = cuts
        .iter()
        .map(|c| c.prob(&small, &phi2).expect("measurable"))
        .collect();
    let enum_bounds = (
        probs.iter().copied().fold(Rat::ONE, Rat::min),
        probs.iter().copied().fold(Rat::ZERO, Rat::max),
    );
    let greedy = pts_interval(&small, AgentId(0), pt(0, 0, 1), &phi2).expect("bounds");
    vec![
        Row::new(
            "E12",
            "Prop 10: P^pts interval == P^post interval (n=6)",
            "holds",
            ok(holds),
        ),
        Row::new(
            "E12",
            format!(
                "greedy bounds == exhaustive bounds over {} cuts (n=2)",
                cuts.len()
            ),
            "equal",
            if greedy == enum_bounds {
                "equal"
            } else {
                "different"
            },
        ),
    ]
}

/// E13 — the `pts` vs `state` adversary contrast (end of §7).
#[must_use]
pub fn e13_pts_vs_state() -> Vec<Row> {
    let sys = protocols::biased_two_run().expect("system builds");
    let heads = protocols::heads_run_fact(&sys);
    let p2 = AgentId(1);
    let c = pt(0, 1, 0);
    let region = kpa_asynchrony::region_for(&sys, p2, p2, c);
    let pts = CutClass::AllPoints
        .bounds(&sys, &region, &heads)
        .expect("bounds");
    let state = CutClass::state()
        .bounds(&sys, &region, &heads)
        .expect("bounds");
    vec![
        Row::new(
            "E13",
            "P^pts: K2 interval for heads",
            "[99/100, 99/100]",
            format!("[{}, {}]", pts.0, pts.1),
        ),
        Row::new(
            "E13",
            "P^state: K2 interval for heads",
            "[0, 99/100]",
            format!("[{}, {}]", state.0, state.1),
        ),
    ]
}

/// E14 — Proposition 11 in full, plus the time-0 agreement of all four
/// assignments.
#[must_use]
pub fn e14_prop11() -> Vec<Row> {
    let epsilon = rat(99, 100);
    let mut rows = Vec::new();
    let expectations: [(&str, System, [bool; 3]); 2] = [
        (
            "CA1",
            protocols::ca1(10, rat(1, 2)).expect("builds"),
            [true, false, false],
        ),
        (
            "CA2",
            protocols::ca2(10, rat(1, 2)).expect("builds"),
            [true, true, false],
        ),
    ];
    for (name, sys, expected) in &expectations {
        let g = [
            sys.agent_id("A").expect("agent"),
            sys.agent_id("B").expect("agent"),
        ];
        let spec = protocols::coordination_formula().common_alpha(g, epsilon);
        for (assignment, want) in [Assignment::prior(), Assignment::post(), Assignment::fut()]
            .iter()
            .zip(expected)
        {
            let pa = ProbAssignment::new(sys, assignment.clone());
            let holds = Model::new(&pa)
                .holds_everywhere(&spec)
                .expect("model checks");
            rows.push(Row::new(
                "E14",
                format!(
                    "{name}: C^0.99(coordinated) everywhere under {}",
                    assignment.name()
                ),
                ok(*want),
                ok(holds),
            ));
        }
    }
    // The crossover sweep: over the runs, CA2 clears .99 once
    // 1 - 2^{-(m+1)} >= 99/100, i.e. m >= 6; pointwise (B's silent
    // posterior 2^m/(2^m + 1) >= 99/100) needs m >= 7. Pointwise
    // confidence is strictly stronger, with a visible crossover.
    let mut run_cross = None;
    let mut point_cross = None;
    for m in 1..=8u32 {
        let sys = protocols::ca2(m, rat(1, 2)).expect("builds");
        if run_cross.is_none() && protocols::coordination_run_probability(&sys) >= epsilon {
            run_cross = Some(m);
        }
        let g = [
            sys.agent_id("A").expect("agent"),
            sys.agent_id("B").expect("agent"),
        ];
        let spec = protocols::coordination_formula().common_alpha(g, epsilon);
        let pa = ProbAssignment::new(&sys, Assignment::post());
        if point_cross.is_none()
            && Model::new(&pa)
                .holds_everywhere(&spec)
                .expect("model checks")
        {
            point_cross = Some(m);
        }
    }
    rows.push(Row::new(
        "E14",
        "smallest m where CA2 clears .99 over the runs",
        "6",
        run_cross.map_or("never".into(), |m| m.to_string()),
    ));
    rows.push(Row::new(
        "E14",
        "smallest m where CA2 clears C^0.99 pointwise (strictly later)",
        "7",
        point_cross.map_or("never".into(), |m| m.to_string()),
    ));

    // Time-0 agreement.
    let sys = protocols::ca2(4, rat(1, 2)).expect("builds");
    let coord = protocols::coordinated_points(&sys);
    let expected = protocols::coordination_run_probability(&sys);
    let agree = [
        Assignment::post(),
        Assignment::fut(),
        Assignment::prior(),
        Assignment::opp(AgentId(1)),
    ]
    .into_iter()
    .all(|a| {
        ProbAssignment::new(&sys, a)
            .prob(AgentId(0), pt(0, 0, 0), &coord)
            .expect("prob")
            == expected
    });
    rows.push(Row::new(
        "E14",
        "all four assignments agree at time 0",
        "holds",
        ok(agree),
    ));
    rows
}

/// E15 — Freund's two aces (Appendix B.1).
#[must_use]
pub fn e15_two_aces() -> Vec<Row> {
    let p2 = AgentId(1);
    let sys1 = protocols::aces_protocol1().expect("builds");
    let both1 = protocols::both_aces_points(&sys1);
    let post1 = ProbAssignment::new(&sys1, Assignment::post());
    let seq: Vec<String> = (1..=3)
        .map(|t| {
            post1
                .prob(p2, pt(0, 1, t), &both1)
                .expect("prob")
                .to_string()
        })
        .collect();

    let sys2 = protocols::aces_protocol2().expect("builds");
    let both2 = protocols::both_aces_points(&sys2);
    let post2 = ProbAssignment::new(&sys2, Assignment::post());
    let spade_point = sys2
        .points()
        .find(|&p| p.time == 3 && sys2.local_name(p2, p).contains("say:spade"))
        .expect("spade announcement exists");
    let final2 = post2.prob(p2, spade_point, &both2).expect("prob");
    vec![
        Row::new(
            "E15",
            "protocol 1: deal -> 'ace' -> 'A-spades'",
            "1/6 -> 1/5 -> 1/3",
            seq.join(" -> "),
        ),
        Row::new(
            "E15",
            "protocol 2: after random suit reveal",
            "1/5",
            final2.to_string(),
        ),
    ]
}

/// E16 — Appendix B.2 (inner-expectation safety) and B.3 (Theorem 11).
#[must_use]
pub fn e16_embedding() -> Vec<Row> {
    // B.2: the inner expected winnings of a payoff-2 bet on the
    // nonmeasurable "recent toss heads" over 2 tosses: 1·(1/4) − 3/4.
    let sys = protocols::async_coin_tosses(2).expect("builds");
    let phi = protocols::recent_heads(&sys);
    let post = ProbAssignment::new(&sys, Assignment::post());
    // Resolve the space through the batched sample plan (one extraction
    // per class, table lookup per point) rather than rebuilding it.
    let space = post
        .sample_plan(AgentId(0))
        .space(pt(0, 0, 1))
        .cloned()
        .expect("the plan covers every point");
    let rule = BetRule::new(phi, rat(1, 2)).expect("valid threshold");
    let e_inner = inner_expected_winnings(
        &space,
        &sys,
        AgentId(0),
        &rule,
        &Strategy::constant(Rat::from_int(2)),
    )
    .expect("constant offer");
    let mut rows = vec![Row::new(
        "E16",
        "B.2: inner expected winnings of payoff-2 bet on recent-heads (n=2)",
        "-1/2",
        e_inner.to_string(),
    )];

    // B.3: Theorem 11 over a rich strategy family.
    let base = ProtocolBuilder::new(["i", "j"])
        .coin("c", &[("h", rat(2, 3)), ("t", rat(1, 3))], &["j"])
        .build()
        .expect("builds");
    let family = protocols::embed::all_strategies(&base, AgentId(1), &[rat(2, 1), rat(3, 1)]);
    let holds = [rat(1, 3), rat(2, 3), Rat::ONE].into_iter().all(|alpha| {
        protocols::theorem11_holds(&base, AgentId(0), AgentId(1), &family, "c=h", alpha)
            .expect("model checks")
    });
    rows.push(Row::new(
        "E16",
        "B.3: Theorem 11 over an 8-strategy family (3 thresholds)",
        "holds",
        ok(holds),
    ));
    // And the instructive failure with a known single strategy.
    let heads_sym = base.local(AgentId(1), pt(0, 0, 1));
    let leaky = Strategy::silent().with_offer(heads_sym, rat(3, 1));
    let fails_single =
        !protocols::theorem11_holds(&base, AgentId(0), AgentId(1), &[leaky], "c=h", Rat::ONE)
            .expect("model checks");
    rows.push(Row::new(
        "E16",
        "B.3: equivalence breaks for a known single informative strategy",
        "breaks",
        if fails_single { "breaks" } else { "holds" },
    ));
    rows
}

/// E17 — extensions the paper proposes as future work (§8 and App.
/// B.3): the adaptive attack protocol, the Fischer–Zuck conditional
/// measure, and the Aumann agreement dynamics.
#[must_use]
pub fn e17_extensions() -> Vec<Row> {
    let mut rows = Vec::new();
    // Adaptive CA1 (§8: "adaptive protocols … with relatively little
    // overhead"): run-level and pointwise guarantees both improve.
    let sys = protocols::ca1_adaptive(10, rat(1, 2)).expect("builds");
    rows.push(Row::new(
        "E17",
        "adaptive CA1: P(coordinated) over the runs",
        "4095/4096",
        protocols::coordination_run_probability(&sys).to_string(),
    ));
    let g = [
        sys.agent_id("A").expect("agent"),
        sys.agent_id("B").expect("agent"),
    ];
    let spec = protocols::coordination_formula().common_alpha(g, rat(99, 100));
    let post = ProbAssignment::new(&sys, Assignment::post());
    rows.push(Row::new(
        "E17",
        "adaptive CA1: C^0.99(coordinated) everywhere under post",
        "holds",
        ok(Model::new(&post)
            .holds_everywhere(&spec)
            .expect("model checks")),
    ));
    // Fischer–Zuck conditional coordination (end of §8).
    let ca1 = protocols::ca1(10, rat(1, 2)).expect("builds");
    rows.push(Row::new(
        "E17",
        "CA1: P(both attack | some attacks) (Fischer-Zuck measure)",
        "1023/1024",
        protocols::conditional_coordination_given_attack(&ca1).to_string(),
    ));
    rows.push(Row::new(
        "E17",
        "adaptive CA1: P(both attack | some attacks)",
        "2046/2047",
        protocols::conditional_coordination_given_attack(&sys).to_string(),
    ));
    // Aumann agreement (end of App. B.3): announce until agreement.
    let four = ProtocolBuilder::new(["p1", "p2"])
        .step("world", |_| {
            (0..4)
                .map(|w| {
                    let mut b = kpa_system::Branch::new(rat(1, 4))
                        .observe("p1", if w < 2 { "left" } else { "right" })
                        .observe("p2", if w < 3 { "low" } else { "high" });
                    if w == 1 || w == 2 {
                        b = b.prop("phi");
                    }
                    b
                })
                .collect()
        })
        .build()
        .expect("builds");
    let phi = four.points_satisfying(four.prop_id("phi").expect("prop"));
    let trace =
        protocols::announce_until_agreement(&four, AgentId(0), AgentId(1), TreeId(0), 1, 0, &phi);
    rows.push(Row::new(
        "E17",
        "Aumann: initial posteriors disagree (1/2 vs 2/3)",
        "1/2 vs 2/3",
        format!("{} vs {}", trace.rounds[0].0, trace.rounds[0].1),
    ));
    rows.push(Row::new(
        "E17",
        "Aumann: announcements end in agreement",
        "agree",
        if protocols::agreed(&trace) {
            "agree"
        } else {
            "disagree"
        },
    ));
    rows
}

/// E18 — scheduler adversaries (§3's "order in which messages arrive"
/// nondeterminism): probabilistic guarantees hold per scheduler, while
/// scheduler-dependent facts have no scheduler-independent probability.
#[must_use]
pub fn e18_scheduler() -> Vec<Row> {
    let sys = protocols::scheduler_race().expect("builds");
    let first_h = protocols::first_heads_points(&sys);
    let prior = ProbAssignment::new(&sys, Assignment::prior());
    let r = sys.agent_id("R").expect("agent");
    let horizon = sys.horizon();
    let mut rows = Vec::new();
    for tree in 0..2 {
        let c = pt(tree, 0, horizon);
        rows.push(Row::new(
            "E18",
            format!(
                "Pr(first message heads) under scheduler {}",
                protocols::SCHEDULES[tree]
            ),
            "1/2",
            prior.prob(r, c, &first_h).expect("prob").to_string(),
        ));
    }
    let from_p = sys.points_satisfying(sys.prop_id("first-from=P").expect("prop"));
    let certain = prior.prob(r, pt(0, 0, horizon), &from_p).expect("prob");
    let never = prior.prob(r, pt(1, 0, horizon), &from_p).expect("prob");
    rows.push(Row::new(
        "E18",
        "Pr(first from P) per scheduler: certain vs impossible",
        "1 vs 0",
        format!("{certain} vs {never}"),
    ));
    let post = ProbAssignment::new(&sys, Assignment::post());
    let model = Model::new(&post);
    let knows = Formula::prop("sched=P-first").known_by(r);
    rows.push(Row::new(
        "E18",
        "R ever learns which scheduler it runs under",
        "never",
        if model.sat(&knows).expect("model checks").is_empty() {
            "never"
        } else {
            "sometimes"
        },
    ));
    rows
}

/// E19 — rational opponents (the Section 9 extension): restricting the
/// opponent to profit-seeking strategies enlarges the safe-bet set
/// exactly when the bettor holds private information.
#[must_use]
pub fn e19_rational_opponents() -> Vec<Row> {
    // The bettor privately observes a 3/4-biased coin; φ = heads.
    let sys = ProtocolBuilder::new(["i", "j"])
        .coin("x", &[("h", rat(3, 4)), ("t", rat(1, 4))], &["i"])
        .build()
        .expect("builds");
    let phi = sys.points_satisfying(sys.prop_id("x=h").expect("prop"));
    let game = BettingGame::new(&sys, AgentId(0), AgentId(1));
    let rule = BetRule::new(phi, rat(1, 2)).expect("valid threshold");
    let tails = pt(0, 1, 1);
    let unsafe_vs_arbitrary = !game.is_safe_at(tails, &rule).expect("decidable");
    let safe_vs_rational = game
        .is_safe_against_rational_at(tails, &rule)
        .expect("decidable");
    vec![
        Row::new(
            "E19",
            "Bet(heads, 1/2) at the tails point vs arbitrary p_j",
            "unsafe",
            if unsafe_vs_arbitrary {
                "unsafe"
            } else {
                "safe"
            },
        ),
        Row::new(
            "E19",
            "same bet vs rational p_j (its posterior is 3/4 > 1/2)",
            "safe",
            if safe_vs_rational { "safe" } else { "unsafe" },
        ),
    ]
}

/// E20 — the zero-knowledge discussion (§8): a leaky prover may
/// knowingly keep playing; the adaptive redesign never does.
#[must_use]
pub fn e20_leaky_prover() -> Vec<Row> {
    let leak = rat(1, 10);
    let rounds = 3;
    let standard = protocols::leaky_prover(leak, rounds).expect("builds");
    let adaptive = protocols::adaptive_prover(leak, rounds).expect("builds");
    let mut rows = vec![Row::new(
        "E20",
        "P(secret ever leaks) with leak=1/10 over 3 rounds",
        "271/1000",
        protocols::leak_run_probability(&standard).to_string(),
    )];
    let post = ProbAssignment::new(&standard, Assignment::post());
    let model = Model::new(&post);
    let bad = protocols::knowing_continuation_formula(&standard);
    rows.push(Row::new(
        "E20",
        "standard prover: knows it leaked yet keeps playing",
        "happens",
        if model.sat(&bad).expect("model checks").is_empty() {
            "never"
        } else {
            "happens"
        },
    ));
    rows.push(Row::new(
        "E20",
        "adaptive prover: continues after a known leak",
        "never",
        if protocols::continued_after_leak_points(&adaptive).is_empty() {
            "never"
        } else {
            "happens"
        },
    ));
    rows
}

/// E21 — randomized leader election (after Rab82, cited in §3): the
/// per-adversary guarantee and the knowledge asymmetry between winner
/// and bystanders.
#[must_use]
pub fn e21_election() -> Vec<Row> {
    let sys = protocols::election(3, 2).expect("builds");
    let mut rows = Vec::new();
    let mut all_match = true;
    for tree in sys.tree_ids() {
        let k = sys.tree(tree).name().matches('P').count() as u32;
        all_match &= protocols::measured_election_probability(&sys, tree)
            == protocols::election_probability(k, 2);
    }
    rows.push(Row::new(
        "E21",
        "P(leader within 2 rounds) = 1-(1-k/2^k)^2 for EVERY contention set",
        "holds",
        ok(all_match),
    ));
    rows.push(Row::new(
        "E21",
        "pair contention: P(leader within 2 rounds)",
        "3/4",
        protocols::election_probability(2, 2).to_string(),
    ));
    // Knowledge: the winner knows; a bystander (3 contenders) does not.
    let post = ProbAssignment::new(&sys, Assignment::post());
    let model = Model::new(&post);
    let tree = sys.tree_id("contend=P0+P1+P2").expect("tree");
    let leader_p0 = sys.points_satisfying(sys.prop_id("leader=P0").expect("prop"));
    let won = sys
        .tree_points(tree)
        .find(|p| p.time == sys.horizon() && leader_p0.contains(p))
        .expect("P0 wins somewhere");
    let winner_knows = model
        .holds_at(&Formula::prop("leader=P0").known_by(AgentId(0)), won)
        .expect("model checks");
    let bystander_knows = model
        .holds_at(&Formula::prop("leader=P0").known_by(AgentId(1)), won)
        .expect("model checks");
    rows.push(Row::new(
        "E21",
        "winner knows it leads; bystander cannot name the leader",
        "yes / no",
        format!(
            "{} / {}",
            if winner_knows { "yes" } else { "no" },
            if bystander_knows { "yes" } else { "no" }
        ),
    ));
    rows
}

/// E22 — Monty Hall under both host protocols: the same Shafer
/// protocol-dependence phenomenon as the two aces, with the opposite
/// resolution.
#[must_use]
pub fn e22_monty_hall() -> Vec<Row> {
    let standard = protocols::monty_standard().expect("builds");
    let ignorant = protocols::monty_ignorant().expect("builds");
    let mut rows = Vec::new();
    for (name, sys, expected) in [
        ("knowing host", &standard, rat(1, 3)),
        ("ignorant host", &ignorant, rat(1, 2)),
    ] {
        let post = ProbAssignment::new(sys, Assignment::post());
        let me = sys.agent_id("contestant").expect("agent");
        let mine = protocols::prize_behind_a(sys);
        let point = sys
            .points()
            .find(|&p| {
                p.time == sys.horizon()
                    && sys.local_name(me, p).contains("opened=")
                    && !sys.local_name(me, p).contains("saw-prize")
            })
            .expect("a goat was revealed somewhere");
        rows.push(Row::new(
            "E22",
            format!("{name}: Pr(own door) after a goat is revealed"),
            expected.to_string(),
            post.prob(me, point, &mine).expect("prob").to_string(),
        ));
    }
    rows
}

/// Runs every experiment, in order.
#[must_use]
pub fn all_experiments() -> Vec<Row> {
    let mut rows = Vec::new();
    rows.extend(e01_vardi());
    rows.extend(e02_footnote5());
    rows.extend(e03_primality());
    rows.extend(e04_attack_pointwise());
    rows.extend(e05_coin_post_fut());
    rows.extend(e06_die_subdivision());
    rows.extend(e07_lattice());
    rows.extend(e08_theorem7());
    rows.extend(e09_theorem8());
    rows.extend(e10_theorem9());
    rows.extend(e11_async_coins());
    rows.extend(e12_prop10());
    rows.extend(e13_pts_vs_state());
    rows.extend(e14_prop11());
    rows.extend(e15_two_aces());
    rows.extend(e16_embedding());
    rows.extend(e17_extensions());
    rows.extend(e18_scheduler());
    rows.extend(e19_rational_opponents());
    rows.extend(e20_leaky_prover());
    rows.extend(e21_election());
    rows.extend(e22_monty_hall());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_matches_the_paper() {
        let rows = all_experiments();
        assert!(rows.len() >= 30, "expected a full experiment table");
        let mismatches: Vec<&Row> = rows.iter().filter(|r| !r.matches).collect();
        assert!(
            mismatches.is_empty(),
            "paper-vs-measured mismatches:\n{}",
            mismatches
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
