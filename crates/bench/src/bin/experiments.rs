//! Prints the full E1–E16 paper-vs-measured table.

fn main() {
    let rows = kpa_bench::all_experiments();
    let mut current = "";
    let mut mismatches = 0usize;
    println!("Halpern & Tuttle, \"Knowledge, Probability, and Adversaries\" (JACM 1993)");
    println!("experiment reproduction: paper value vs measured value\n");
    for row in &rows {
        if row.experiment != current {
            current = row.experiment;
            println!();
        }
        println!("{row}");
        if !row.matches {
            mismatches += 1;
        }
    }
    println!(
        "\n{} quantities reproduced, {} mismatch(es)",
        rows.len(),
        mismatches
    );
    if mismatches > 0 {
        std::process::exit(1);
    }
}
