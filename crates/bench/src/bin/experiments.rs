//! Prints the full E1–E16 paper-vs-measured table.
//!
//! With `KPA_TRACE=1` (or `--trace`) the run ends with the `kpa-trace`
//! counter/histogram report — system builds, cache hit rates, dense
//! kernel traffic, and pool scheduling across all experiments.

fn main() {
    if std::env::args().any(|a| a == "--trace") {
        kpa_trace::Trace::enabled(true);
    }
    if kpa_trace::Trace::is_enabled() {
        kpa_trace::registry().reset();
    }
    let rows = kpa_bench::all_experiments();
    let mut current = "";
    let mut mismatches = 0usize;
    println!("Halpern & Tuttle, \"Knowledge, Probability, and Adversaries\" (JACM 1993)");
    println!("experiment reproduction: paper value vs measured value\n");
    for row in &rows {
        if row.experiment != current {
            current = row.experiment;
            println!();
        }
        println!("{row}");
        if !row.matches {
            mismatches += 1;
        }
    }
    println!(
        "\n{} quantities reproduced, {} mismatch(es)",
        rows.len(),
        mismatches
    );
    if kpa_trace::Trace::is_enabled() {
        print!("\n{}", kpa_trace::registry().snapshot().render_table());
    }
    if mismatches > 0 {
        std::process::exit(1);
    }
}
