//! The process-global metric registry and the fixed-capacity event
//! ring.
//!
//! Registration (first lookup of a name) takes a mutex and leaks the
//! metric into `'static` storage; every later access goes through the
//! returned `&'static` reference and is lock-free. Call sites that fire
//! repeatedly cache that reference in a `OnceLock` (the `count!` /
//! `record!` / `span!` macros do this automatically), so the steady
//! state never touches the registry lock at all.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::{Counter, Histogram};
use crate::report::{HistogramSnapshot, TraceReport, WindowedSnapshot};
use crate::rolling::RollingHistogram;
use crate::spans::{self, SpanSite};

/// Default capacity of the event ring; older events are overwritten
/// (and counted as dropped) once it fills. The process-global ring's
/// actual capacity can be overridden with the `KPA_TRACE_EVENTS`
/// environment variable (read once, when the registry is first used),
/// so long-running soak tests can bound event memory — or widen it —
/// without recompiling.
pub const RING_CAPACITY: usize = 1024;

/// The event-ring capacity the process-global registry will use:
/// `KPA_TRACE_EVENTS` when set to a positive integer, otherwise
/// [`RING_CAPACITY`].
fn ring_capacity_from_env() -> usize {
    std::env::var("KPA_TRACE_EVENTS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(RING_CAPACITY)
}

/// One entry in the event ring: a named point-in-time observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (never reused, survives overwrites).
    pub seq: u64,
    /// Nanoseconds since the registry was created.
    pub at_ns: u64,
    /// Event name (interned; `'static`).
    pub name: &'static str,
    /// Free-form payload value.
    pub value: u64,
}

#[derive(Debug)]
struct Ring {
    /// Maximum events retained; the oldest are overwritten past this.
    capacity: usize,
    events: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    seq: u64,
    dropped: u64,
}

impl Default for Ring {
    fn default() -> Ring {
        Ring::with_capacity(RING_CAPACITY)
    }
}

impl Ring {
    fn with_capacity(capacity: usize) -> Ring {
        Ring {
            capacity: capacity.max(1),
            events: Vec::new(),
            head: 0,
            seq: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, at_ns: u64, name: &'static str, value: u64) {
        let ev = Event {
            seq: self.seq,
            at_ns,
            name,
            value,
        };
        self.seq += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> (Vec<Event>, u64) {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        (out, self.dropped)
    }

    fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
        // `seq` is deliberately NOT reset: sequence numbers stay
        // globally monotonic across `Registry::reset` so event logs
        // from successive bench rows never alias.
    }
}

/// Process-global registry of named counters, histograms, and the
/// event ring. Obtain it via [`registry`].
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    rollings: Mutex<BTreeMap<&'static str, &'static RollingHistogram>>,
    span_sites: Mutex<BTreeMap<&'static str, &'static SpanSite>>,
    ring: Mutex<Ring>,
    epoch: Instant,
}

/// The process-global [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        rollings: Mutex::new(BTreeMap::new()),
        span_sites: Mutex::new(BTreeMap::new()),
        ring: Mutex::new(Ring::with_capacity(ring_capacity_from_env())),
        epoch: Instant::now(),
    })
}

/// Intern a metric name: names live for the life of the process (the
/// registry is global and metrics are never unregistered), so leaking
/// the handful of distinct names is the zero-dep way to get `'static`
/// keys for dynamically built names like per-shard counters.
fn intern(name: &str) -> &'static str {
    Box::leak(name.to_owned().into_boxed_str())
}

impl Registry {
    /// Look up (or create) the counter called `name`.
    ///
    /// The returned reference is `'static`: cache it and skip the
    /// lookup on the hot path. Dynamic names (e.g. per-shard) are fine
    /// — each *distinct* name leaks one small allocation, once.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut map = self.counters.lock().expect("trace counter registry");
        if let Some(c) = map.get(name) {
            return c;
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        map.insert(intern(name), c);
        c
    }

    /// Look up (or create) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut map = self.histograms.lock().expect("trace histogram registry");
        if let Some(h) = map.get(name) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        map.insert(intern(name), h);
        h
    }

    /// Look up (or create) the rolling-window histogram called `name`.
    ///
    /// Rolling histograms *wrap* cumulative ones at the call site —
    /// record into both — so existing cumulative readers see the same
    /// stream they always did.
    pub fn rolling(&self, name: &str) -> &'static RollingHistogram {
        let mut map = self.rollings.lock().expect("trace rolling registry");
        if let Some(r) = map.get(name) {
            return r;
        }
        let r: &'static RollingHistogram = Box::leak(Box::new(RollingHistogram::new()));
        map.insert(intern(name), r);
        r
    }

    /// Look up (or create) the `span!` call site called `name`: the
    /// site's cumulative histogram plus its interned name, bundled so
    /// the macro can open span-tree records without a second lookup.
    pub fn span_site(&self, name: &str) -> &'static SpanSite {
        let mut map = self.span_sites.lock().expect("trace span-site registry");
        if let Some(site) = map.get(name) {
            return site;
        }
        let hist = self.histogram(name);
        let key = intern(name);
        let site: &'static SpanSite = Box::leak(Box::new(SpanSite::new(key, hist)));
        map.insert(key, site);
        site
    }

    /// Append a point-in-time event to the ring (oldest entries are
    /// overwritten past [`RING_CAPACITY`]). Callers should gate on
    /// [`crate::enabled`]; the `event!` macro does.
    pub fn event(&self, name: &str, value: u64) {
        let at_ns = self.epoch.elapsed().as_nanos() as u64;
        // Reuse the counter-name interner so repeated event names
        // don't leak per occurrence: intern via a tiny name cache.
        let name = self.intern_event_name(name);
        self.ring
            .lock()
            .expect("trace event ring")
            .push(at_ns, name, value);
    }

    fn intern_event_name(&self, name: &str) -> &'static str {
        // Event names are drawn from the same small vocabulary as
        // metric names; keep them in the counter map's key space by
        // registering a counter of the same name. This both interns
        // the string once and gives every event kind an occurrence
        // counter for free.
        let mut map = self.counters.lock().expect("trace counter registry");
        if let Some((k, c)) = map.get_key_value(name) {
            c.incr();
            return k;
        }
        let k = intern(name);
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        c.incr();
        map.insert(k, c);
        k
    }

    /// Nanoseconds elapsed since the registry was created (the time
    /// base of [`Event::at_ns`]).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The event ring's capacity: [`RING_CAPACITY`] unless the
    /// `KPA_TRACE_EVENTS` environment variable overrode it at first
    /// registry use.
    pub fn ring_capacity(&self) -> usize {
        self.ring.lock().expect("trace event ring").capacity
    }

    /// A point-in-time copy of every metric and the event ring.
    ///
    /// Snapshots are cheap (relaxed loads) and safe to take while
    /// workers are still recording; concurrent updates may or may not
    /// be visible, which is fine at the quiescent points where reports
    /// are taken.
    pub fn snapshot(&self) -> TraceReport {
        let counters = {
            let map = self.counters.lock().expect("trace counter registry");
            map.iter()
                .map(|(k, c)| ((*k).to_owned(), c.get()))
                .collect::<BTreeMap<String, u64>>()
        };
        let histograms = {
            let map = self.histograms.lock().expect("trace histogram registry");
            map.iter()
                .map(|(k, h)| ((*k).to_owned(), HistogramSnapshot::of(h)))
                .collect::<BTreeMap<String, HistogramSnapshot>>()
        };
        let windowed = {
            let map = self.rollings.lock().expect("trace rolling registry");
            map.iter()
                .map(|(k, r)| ((*k).to_owned(), WindowedSnapshot::of(&r.window())))
                .collect::<BTreeMap<String, WindowedSnapshot>>()
        };
        let (span_records, spans_dropped) = spans::snapshot_span_records();
        let span_sites = spans::span_site_stats(&span_records);
        let (events, dropped_events) = self.ring.lock().expect("trace event ring").snapshot();
        TraceReport {
            enabled: crate::enabled(),
            counters,
            histograms,
            windowed,
            span_sites,
            spans_dropped,
            events,
            dropped_events,
            rows: BTreeMap::new(),
        }
    }

    /// Zero every counter and histogram and clear the event ring
    /// (sequence numbers keep advancing). Used between bench rows to
    /// get per-row deltas from a shared process-global registry.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .expect("trace counter registry")
            .values()
        {
            c.reset();
        }
        for h in self
            .histograms
            .lock()
            .expect("trace histogram registry")
            .values()
        {
            h.reset();
        }
        for r in self
            .rollings
            .lock()
            .expect("trace rolling registry")
            .values()
        {
            r.reset();
        }
        spans::reset_spans();
        self.ring.lock().expect("trace event ring").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut ring = Ring::default();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(i, "tick", i);
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(dropped, 10);
        // Oldest surviving event is #10; order is seq-ascending.
        assert_eq!(events.first().unwrap().seq, 10);
        assert_eq!(events.last().unwrap().seq, RING_CAPACITY as u64 + 9);
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        let seq_before = ring.seq;
        ring.clear();
        assert_eq!(ring.seq, seq_before, "clear must not rewind seq");
        assert_eq!(ring.snapshot().0.len(), 0);
    }

    #[test]
    fn ring_capacity_is_configurable() {
        let mut ring = Ring::with_capacity(4);
        for i in 0..10u64 {
            ring.push(i, "tick", i);
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        assert_eq!(events.first().unwrap().seq, 6);
        // A zero request clamps to one slot rather than panicking.
        assert_eq!(Ring::with_capacity(0).capacity, 1);
        // The process-global ring reports a positive capacity (the
        // default, or whatever KPA_TRACE_EVENTS selected at first use).
        assert!(registry().ring_capacity() >= 1);
    }

    #[test]
    fn registry_interns_names_once() {
        let reg = registry();
        let a = reg.counter("test.registry.intern");
        let b = reg.counter("test.registry.intern");
        assert!(std::ptr::eq(a, b), "same name must yield same counter");
        let h1 = reg.histogram("test.registry.hist");
        let h2 = reg.histogram("test.registry.hist");
        assert!(std::ptr::eq(h1, h2));
        let r1 = reg.rolling("test.registry.roll");
        let r2 = reg.rolling("test.registry.roll");
        assert!(std::ptr::eq(r1, r2));
        let s1 = reg.span_site("test.registry.site_ns");
        let s2 = reg.span_site("test.registry.site_ns");
        assert!(std::ptr::eq(s1, s2));
        assert!(
            std::ptr::eq(s1.histogram(), reg.histogram("test.registry.site_ns")),
            "a span site shares the same-named cumulative histogram"
        );
    }
}
