//! Snapshot types and exporters: stable JSON (in-repo writer, same
//! policy as the bench's `BENCH_*.json`) and a human-readable table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{bucket_floor, Histogram, BUCKETS};
use crate::registry::Event;
use crate::spans::SpanSiteStat;

/// Schema version stamped into every trace JSON document.
///
/// v2 (PR 10) added the `windowed` section (rolling-window
/// p50/p99 summaries) and the `spans` section (dropped count +
/// per-site aggregates from the span-tree rings) between
/// `histograms` and `rows`; v1 documents are otherwise a strict
/// subset.
pub const TRACE_SCHEMA_VERSION: u64 = 2;

/// An immutable copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (wrapping).
    pub sum: u64,
    /// Smallest sample, `None` when empty.
    pub min: Option<u64>,
    /// Largest sample, `None` when empty.
    pub max: Option<u64>,
    /// Sparse buckets: `(bucket floor value, count)` for every
    /// non-empty log₂ bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Snapshot a live histogram (relaxed loads).
    pub fn of(h: &Histogram) -> Self {
        let buckets = (0..BUCKETS)
            .filter_map(|k| {
                let n = h.bucket(k);
                (n > 0).then(|| (bucket_floor(k), n))
            })
            .collect();
        Self {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            buckets,
        }
    }

    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile of the recorded samples, resolved to the floor
    /// of the log₂ bucket containing that rank (`q` is clamped to
    /// `[0, 1]`; `None` when the histogram is empty).
    ///
    /// Buckets give a lower bound, not the exact sample: the true
    /// value lies within the bucket, i.e. less than twice the returned
    /// floor (plus one for the `[0]` and `[1]` buckets). That is the
    /// usual contract for log-bucketed latency percentiles — p50/p99
    /// rows derived from it are stable across runs because bucket
    /// edges are fixed.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q * count), with
        // q = 0 mapped to the first sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(floor, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(floor);
            }
        }
        self.buckets.last().map(|&(floor, _)| floor)
    }

    /// Convenience: the median bucket floor ([`quantile`](Self::quantile) at 0.5).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// Convenience: the 99th-percentile bucket floor.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// A rolling-window summary: the last-window shape of one
/// [`RollingHistogram`](crate::RollingHistogram), reduced to the four
/// numbers the schema exports (full bucket detail stays in-process;
/// the wire cares about "what was p99 just now").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedSnapshot {
    /// Samples inside the window.
    pub count: u64,
    /// Sum of those samples (wrapping).
    pub sum: u64,
    /// Median bucket floor over the window, `None` when empty.
    pub p50: Option<u64>,
    /// 99th-percentile bucket floor over the window, `None` when empty.
    pub p99: Option<u64>,
}

impl WindowedSnapshot {
    /// Reduce a merged window snapshot to the exported summary.
    #[must_use]
    pub fn of(window: &HistogramSnapshot) -> WindowedSnapshot {
        WindowedSnapshot {
            count: window.count,
            sum: window.sum,
            p50: window.p50(),
            p99: window.p99(),
        }
    }
}

/// A point-in-time copy of the whole registry, ready for export.
///
/// `rows` is an optional per-label breakdown (the bench fills it with
/// per-row counter deltas); it is empty in ordinary snapshots.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Whether tracing was enabled when the snapshot was taken.
    pub enabled: bool,
    /// All counters by name, sorted (BTreeMap iteration order).
    pub counters: BTreeMap<String, u64>,
    /// All histograms by name, sorted.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Rolling-window summaries by name, sorted (schema v2).
    pub windowed: BTreeMap<String, WindowedSnapshot>,
    /// Per-site span aggregates, hottest first (schema v2).
    pub span_sites: Vec<SpanSiteStat>,
    /// Span records evicted from full per-thread rings (schema v2).
    pub spans_dropped: u64,
    /// Surviving ring-buffer events, sequence-ascending.
    pub events: Vec<Event>,
    /// Events overwritten after the ring filled.
    pub dropped_events: u64,
    /// Optional per-label counter breakdowns (bench rows).
    pub rows: BTreeMap<String, BTreeMap<String, u64>>,
}

impl TraceReport {
    /// The value of counter `name`, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counter-wise difference `self - earlier` (saturating), covering
    /// every counter present in either snapshot. Used by the bench to
    /// attribute counter traffic to individual rows.
    pub fn delta_counters(&self, earlier: &TraceReport) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (name, &now) in &self.counters {
            let before = earlier.counter(name);
            out.insert(name.clone(), now.saturating_sub(before));
        }
        for name in earlier.counters.keys() {
            out.entry(name.clone()).or_insert(0);
        }
        out
    }

    /// Serialize to the stable trace JSON schema (version
    /// [`TRACE_SCHEMA_VERSION`]): sorted keys, sparse histogram
    /// buckets as `[floor, count]` pairs, events as
    /// `[seq, at_ns, name, value]` tuples.
    pub fn to_json(&self, workload: &str) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"kpa_trace\": {TRACE_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"enabled\": {},", self.enabled);
        let _ = writeln!(s, "  \"workload\": {},", json_str(workload));
        s.push_str("  \"counters\": {");
        push_counter_map(&mut s, &self.counters, "    ");
        s.push_str("  },\n");
        s.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                json_str(name),
                h.count,
                h.sum,
                json_opt(h.min),
                json_opt(h.max)
            );
            for (j, (floor, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{floor}, {n}]");
            }
            s.push_str("]}");
        }
        if !self.histograms.is_empty() {
            s.push('\n');
        }
        s.push_str("  },\n");
        s.push_str("  \"windowed\": {");
        for (i, (name, w)) in self.windowed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "    {}: {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                json_str(name),
                w.count,
                w.sum,
                json_opt(w.p50),
                json_opt(w.p99)
            );
        }
        if !self.windowed.is_empty() {
            s.push('\n');
        }
        s.push_str("  },\n");
        let _ = write!(
            s,
            "  \"spans\": {{\"dropped\": {}, \"sites\": {{",
            self.spans_dropped
        );
        for (i, site) in self.span_sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "    {}: {{\"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                json_str(site.site),
                site.count,
                site.total_ns,
                site.max_ns
            );
        }
        if !self.span_sites.is_empty() {
            s.push('\n');
        }
        s.push_str("  }},\n");
        s.push_str("  \"rows\": {");
        for (i, (label, counters)) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(s, "    {}: {{", json_str(label));
            push_counter_map(&mut s, counters, "      ");
            s.push_str("    }");
        }
        if !self.rows.is_empty() {
            s.push('\n');
        }
        s.push_str("  },\n");
        s.push_str("  \"events\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "    [{}, {}, {}, {}]",
                ev.seq,
                ev.at_ns,
                json_str(ev.name),
                ev.value
            );
        }
        if !self.events.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n");
        let _ = writeln!(s, "  \"dropped_events\": {}", self.dropped_events);
        s.push_str("}\n");
        s
    }

    /// Render a fixed-width human-readable table (counters, then
    /// histograms with count/mean/min/max), for `kpa-explore --trace`
    /// and the examples.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "trace report ({})",
            if self.enabled { "enabled" } else { "disabled" }
        );
        if self.counters.is_empty() && self.histograms.is_empty() {
            s.push_str("  (no metrics recorded)\n");
            return s;
        }
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(8);
        if !self.counters.is_empty() {
            let _ = writeln!(s, "  {:<width$}  {:>12}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(s, "  {name:<width$}  {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                s,
                "  {:<width$}  {:>12}  {:>12}  {:>12}  {:>12}",
                "histogram", "count", "mean", "min", "max"
            );
            for (name, h) in &self.histograms {
                let mean = h
                    .mean()
                    .map(|m| format!("{m:.1}"))
                    .unwrap_or_else(|| "-".into());
                let fmt_opt =
                    |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
                let _ = writeln!(
                    s,
                    "  {name:<width$}  {:>12}  {mean:>12}  {:>12}  {:>12}",
                    h.count,
                    fmt_opt(h.min),
                    fmt_opt(h.max)
                );
            }
        }
        if !self.windowed.is_empty() {
            let fmt_opt = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                s,
                "  {:<width$}  {:>12}  {:>12}  {:>12}",
                "windowed", "count", "p50", "p99"
            );
            for (name, w) in &self.windowed {
                let _ = writeln!(
                    s,
                    "  {name:<width$}  {:>12}  {:>12}  {:>12}",
                    w.count,
                    fmt_opt(w.p50),
                    fmt_opt(w.p99)
                );
            }
        }
        if !self.span_sites.is_empty() {
            let _ = writeln!(
                s,
                "  {:<width$}  {:>12}  {:>12}  {:>12}",
                "span site", "count", "total_ns", "max_ns"
            );
            for site in &self.span_sites {
                let _ = writeln!(
                    s,
                    "  {:<width$}  {:>12}  {:>12}  {:>12}",
                    site.site, site.count, site.total_ns, site.max_ns
                );
            }
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(
                s,
                "  ({} span records dropped from per-thread rings)",
                self.spans_dropped
            );
        }
        if self.dropped_events > 0 {
            let _ = writeln!(
                s,
                "  ({} events dropped from the ring)",
                self.dropped_events
            );
        }
        s
    }
}

fn push_counter_map(s: &mut String, map: &BTreeMap<String, u64>, indent: &str) {
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        let _ = write!(s, "{indent}{}: {v}", json_str(name));
    }
    if !map.is_empty() {
        s.push('\n');
    }
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".into(),
    }
}

/// Minimal JSON string escaper: quotes the string and escapes
/// quotes/backslashes/control characters so the output is always a
/// well-formed JSON string literal. Public because downstream
/// protocol writers (`kpa-serve`) build their line-delimited JSON on
/// the same stable serialization rules as the trace reports.
#[must_use]
pub fn json_escape(s: &str) -> String {
    json_str(s)
}

/// Internal alias kept short for the writer above.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> TraceReport {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        let mut counters = BTreeMap::new();
        counters.insert("a.b".to_owned(), 3u64);
        let mut histograms = BTreeMap::new();
        histograms.insert("lat_ns".to_owned(), HistogramSnapshot::of(&h));
        let mut windowed = BTreeMap::new();
        windowed.insert(
            "lat_ns".to_owned(),
            WindowedSnapshot::of(&HistogramSnapshot::of(&h)),
        );
        TraceReport {
            enabled: true,
            counters,
            histograms,
            windowed,
            span_sites: vec![SpanSiteStat {
                site: "demo.step_ns",
                count: 2,
                total_ns: 110,
                max_ns: 100,
            }],
            spans_dropped: 0,
            events: vec![Event {
                seq: 0,
                at_ns: 17,
                name: "tick",
                value: 9,
            }],
            dropped_events: 0,
            rows: BTreeMap::new(),
        }
    }

    #[test]
    fn json_is_stable_and_wellformed() {
        let r = tiny_report();
        let a = r.to_json("unit");
        let b = r.to_json("unit");
        assert_eq!(a, b, "serialization must be deterministic");
        assert!(a.starts_with("{\n  \"kpa_trace\": 2,"));
        assert!(a.contains("\"workload\": \"unit\""));
        assert!(a.contains("\"a.b\": 3"));
        assert!(a.contains("\"buckets\": [[0, 1], [4, 1]]"));
        assert!(a.contains("\"lat_ns\": {\"count\": 2, \"sum\": 5, \"p50\": 0, \"p99\": 4}"));
        assert!(a.contains("\"spans\": {\"dropped\": 0, \"sites\": {"));
        assert!(a.contains("\"demo.step_ns\": {\"count\": 2, \"total_ns\": 110, \"max_ns\": 100}"));
        assert!(a.contains("[0, 17, \"tick\", 9]"));
        assert!(a.trim_end().ends_with('}'));
        // Braces and brackets balance (stringless schema sanity).
        let opens = a.matches('{').count() + a.matches('[').count();
        let closes = a.matches('}').count() + a.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn delta_counters_saturate_and_cover_both_sides() {
        let mut earlier = tiny_report();
        earlier.counters.insert("only.before".into(), 10);
        let mut later = tiny_report();
        later.counters.insert("a.b".into(), 8);
        later.counters.insert("only.after".into(), 2);
        let d = later.delta_counters(&earlier);
        assert_eq!(d["a.b"], 5);
        assert_eq!(d["only.after"], 2);
        assert_eq!(d["only.before"], 0, "shrinking counters saturate at 0");
    }

    #[test]
    fn table_renders_all_metrics() {
        let t = tiny_report().render_table();
        assert!(t.contains("a.b"));
        assert!(t.contains("lat_ns"));
        assert!(t.contains("enabled"));
        assert!(t.contains("windowed"));
        assert!(t.contains("demo.step_ns"));
    }

    #[test]
    fn quantiles_resolve_to_bucket_floors() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = HistogramSnapshot::of(&h);
        assert_eq!(snap.quantile(0.0), Some(1));
        assert_eq!(snap.p50(), Some(2), "rank 3 of 5 lands in the [2,4) bucket");
        assert_eq!(snap.p99(), Some(512), "rank 5 lands in 1000's bucket");
        assert_eq!(snap.quantile(1.0), Some(512));
        let empty = HistogramSnapshot::of(&Histogram::new());
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn json_escapes_controls() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
