//! Rolling-window histograms: recent-latency quantiles without a
//! background thread.
//!
//! The cumulative [`Histogram`](crate::Histogram) answers "what has
//! this process seen since it started" — the wrong question for
//! backpressure, where a p99 regression in the last few seconds drowns
//! in hours of warm history. A [`RollingHistogram`] keeps `N` slot
//! histograms on a ring indexed by a *coarse monotonic tick* (the
//! registry's nanosecond clock shifted right by a power of two, ~1 s
//! per slot by default). Recording lands in the slot of the current
//! tick; a recorder that finds the slot stamped with an older tick
//! rotates it (reset + restamp) lazily, so there is no timer thread
//! and an idle window simply decays to empty slots. The window
//! snapshot merges every slot whose stamp falls inside the last `N`
//! ticks, giving p50/p99 over roughly the last `N` slot-durations.
//!
//! Rolling histograms *wrap* cumulative ones at the call site — the
//! caller records into both — so every existing reader of the
//! cumulative histograms is untouched.
//!
//! Concurrency is telemetry-grade by design: rotation is claimed with
//! a compare-exchange on the slot's stamp, and a sample racing the
//! reset of its own slot can be lost. Counts are diagnostics, not
//! ledgers; the exact-rational answer path never reads them.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::{bucket_floor, Histogram, BUCKETS};
use crate::report::HistogramSnapshot;

/// Default number of window slots.
pub const ROLLING_SLOTS: usize = 8;

/// Default tick granularity: nanoseconds shifted right by this many
/// bits, i.e. one tick ≈ 1.07 s — so the default window covers the
/// last ~8.6 s.
pub const ROLLING_SLOT_NS_SHIFT: u32 = 30;

/// One window slot: a histogram stamped with the tick it belongs to.
/// The stamp stores `tick + 1` so that `0` means "never used".
#[derive(Debug)]
struct Slot {
    stamp: AtomicU64,
    hist: Histogram,
}

/// An `N`-slot rolling-window log₂ histogram.
///
/// `record` places samples into the slot of the current coarse tick,
/// lazily resetting slots whose stamp has fallen out of the window;
/// [`RollingHistogram::window`] merges the live slots into one
/// [`HistogramSnapshot`] whose `p50`/`p99` describe only the last
/// window. All state is relaxed atomics — no locks, no background
/// thread, safe to record from any number of threads.
#[derive(Debug)]
pub struct RollingHistogram {
    slots: Box<[Slot]>,
    shift: u32,
    /// Samples dropped because their tick was older than the slot's
    /// current stamp (clock skew between caller and rotator).
    skewed: AtomicU64,
}

impl Default for RollingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl RollingHistogram {
    /// A rolling histogram with the default slot count and tick size.
    #[must_use]
    pub fn new() -> RollingHistogram {
        RollingHistogram::with_slots(ROLLING_SLOTS, ROLLING_SLOT_NS_SHIFT)
    }

    /// A rolling histogram with `slots` slots of `2^shift` nanoseconds
    /// each (tests use small shifts to drive rotation deterministically).
    ///
    /// # Panics
    ///
    /// If `slots` is zero or `shift` is 64 or more.
    #[must_use]
    pub fn with_slots(slots: usize, shift: u32) -> RollingHistogram {
        assert!(slots > 0, "RollingHistogram needs at least one slot");
        assert!(shift < 64, "tick shift must leave a nonzero tick range");
        RollingHistogram {
            slots: (0..slots)
                .map(|_| Slot {
                    stamp: AtomicU64::new(0),
                    hist: Histogram::new(),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            shift,
            skewed: AtomicU64::new(0),
        }
    }

    /// Number of window slots.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds per slot (`2^shift`).
    #[must_use]
    pub fn slot_ns(&self) -> u64 {
        1u64 << self.shift
    }

    /// The current coarse tick (registry clock over the slot size).
    #[must_use]
    pub fn now_tick(&self) -> u64 {
        crate::registry().now_ns() >> self.shift
    }

    /// Samples dropped because their tick had already been rotated out.
    #[must_use]
    pub fn skewed(&self) -> u64 {
        self.skewed.load(Ordering::Relaxed)
    }

    /// Record one sample at the current tick.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_at_tick(v, self.now_tick());
    }

    /// Record one sample as of an explicit tick (the rotation-edge
    /// test hook; production callers use [`RollingHistogram::record`]).
    ///
    /// A sample whose tick is *older* than the slot's current stamp is
    /// dropped and counted in [`RollingHistogram::skewed`] — recording
    /// it would pollute a newer window slot with stale data.
    pub fn record_at_tick(&self, v: u64, tick: u64) {
        let slot = &self.slots[(tick % self.slots.len() as u64) as usize];
        let stamp = tick + 1;
        loop {
            let seen = slot.stamp.load(Ordering::Relaxed);
            if seen == stamp {
                slot.hist.record(v);
                return;
            }
            if seen > stamp {
                self.skewed.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // The slot holds an older window's data: claim the
            // rotation, reset, then record. A racing recorder that
            // observes the new stamp before the reset finishes may
            // lose its sample — acceptable for diagnostics.
            if slot
                .stamp
                .compare_exchange(seen, stamp, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                slot.hist.reset();
                slot.hist.record(v);
                return;
            }
        }
    }

    /// Merge of every slot in the window ending at the current tick.
    #[must_use]
    pub fn window(&self) -> HistogramSnapshot {
        self.window_at_tick(self.now_tick())
    }

    /// Merge of every slot whose stamp lies in the `N`-tick window
    /// ending at `tick` (inclusive). Slots that were never stamped, or
    /// whose stamp has aged out, contribute nothing — an idle stream
    /// decays to an empty snapshot.
    #[must_use]
    pub fn window_at_tick(&self, tick: u64) -> HistogramSnapshot {
        let newest = tick + 1;
        let oldest = newest.saturating_sub(self.slots.len() as u64 - 1);
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min: Option<u64> = None;
        let mut max: Option<u64> = None;
        for slot in self.slots.iter() {
            let stamp = slot.stamp.load(Ordering::Relaxed);
            if stamp == 0 || stamp < oldest || stamp > newest {
                continue;
            }
            let n = slot.hist.count();
            if n == 0 {
                continue;
            }
            count += n;
            sum = sum.wrapping_add(slot.hist.sum());
            min = match (min, slot.hist.min()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            max = match (max, slot.hist.max()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            for (k, bucket) in buckets.iter_mut().enumerate() {
                *bucket += slot.hist.bucket(k);
            }
        }
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            buckets: buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n > 0)
                .map(|(k, &n)| (bucket_floor(k), n))
                .collect(),
        }
    }

    /// Empty every slot (used by `Registry::reset` between bench rows).
    pub(crate) fn reset(&self) {
        for slot in self.slots.iter() {
            slot.stamp.store(0, Ordering::Relaxed);
            slot.hist.reset();
        }
        self.skewed.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Samples recorded at one tick are visible in windows ending at
    /// that tick and gone once the window slides past them.
    #[test]
    fn window_slides_and_decays() {
        let r = RollingHistogram::with_slots(4, 10);
        r.record_at_tick(100, 5);
        r.record_at_tick(200, 6);
        let w = r.window_at_tick(6);
        assert_eq!(w.count, 2);
        assert_eq!(w.min, Some(100));
        assert_eq!(w.max, Some(200));
        // Window [5..=8] still sees tick 5; window [6..=9] does not.
        assert_eq!(r.window_at_tick(8).count, 2);
        assert_eq!(r.window_at_tick(9).count, 1);
        assert_eq!(r.window_at_tick(42).count, 0, "idle stream decays to empty");
    }

    /// Empty slots (never stamped, or stamped then aged out) simply
    /// contribute nothing; an empty window has no quantiles.
    #[test]
    fn empty_slots_are_skipped() {
        let r = RollingHistogram::with_slots(4, 10);
        let w = r.window_at_tick(0);
        assert_eq!(w.count, 0);
        assert_eq!(w.p50(), None);
        assert_eq!(w.p99(), None);
        // One live slot among three empty ones.
        r.record_at_tick(7, 2);
        let w = r.window_at_tick(3);
        assert_eq!(w.count, 1);
        assert_eq!(w.p50(), Some(4), "7 lands in the [4,8) bucket");
    }

    /// A slot is reused after `N` ticks: the rotation resets it, so
    /// old samples never leak into a new window.
    #[test]
    fn rotation_resets_reused_slots() {
        let r = RollingHistogram::with_slots(4, 10);
        r.record_at_tick(1, 0);
        r.record_at_tick(1, 0);
        // Tick 4 maps to the same slot as tick 0 and must evict it.
        r.record_at_tick(1000, 4);
        let w = r.window_at_tick(4);
        assert_eq!(w.count, 1);
        assert_eq!(w.min, Some(1000), "rotated slot must forget old samples");
    }

    /// Tick skew: a sample carrying a tick older than the slot's
    /// current stamp is dropped (and counted), not recorded into the
    /// newer window.
    #[test]
    fn skewed_samples_are_dropped_not_misfiled() {
        let r = RollingHistogram::with_slots(4, 10);
        r.record_at_tick(10, 4);
        assert_eq!(r.skewed(), 0);
        // Tick 0 maps to the slot now stamped for tick 4.
        r.record_at_tick(99, 0);
        assert_eq!(r.skewed(), 1);
        let w = r.window_at_tick(4);
        assert_eq!(w.count, 1);
        assert_eq!(w.max, Some(10), "stale sample must not pollute the slot");
    }

    /// Saturation: extreme values land in the top bucket and the
    /// window quantiles resolve to its floor, exactly like the
    /// cumulative histogram.
    #[test]
    fn saturating_values_keep_quantiles_sane() {
        let r = RollingHistogram::with_slots(2, 10);
        for _ in 0..10 {
            r.record_at_tick(u64::MAX, 1);
        }
        r.record_at_tick(0, 1);
        let w = r.window_at_tick(1);
        assert_eq!(w.count, 11);
        assert_eq!(w.max, Some(u64::MAX));
        assert_eq!(w.p99(), Some(1u64 << 63), "top bucket floor");
        assert_eq!(w.quantile(0.0), Some(0));
    }

    /// The wall-clock path: now_tick advances with the registry clock
    /// and record()/window() agree on the current slot.
    #[test]
    fn wall_clock_path_records_into_the_live_window() {
        let r = RollingHistogram::new();
        assert_eq!(r.slot_count(), ROLLING_SLOTS);
        assert_eq!(r.slot_ns(), 1u64 << ROLLING_SLOT_NS_SHIFT);
        r.record(123);
        r.record(456);
        let w = r.window();
        assert_eq!(w.count, 2);
        assert_eq!(w.min, Some(123));
        r.reset();
        assert_eq!(r.window().count, 0);
        assert_eq!(r.skewed(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_rejected() {
        let _ = RollingHistogram::with_slots(0, 10);
    }
}
