//! Lock-free metric primitives: monotonic [`Counter`]s and log₂-bucketed
//! [`Histogram`]s.
//!
//! Both are built from relaxed atomics only: recording never takes a
//! lock, never allocates, and never fences. The ordering guarantees are
//! deliberately weak — metrics are *diagnostics*, read at quiescent
//! points (end of a bench row, end of a run), not synchronization
//! primitives. Cross-thread sums are exact because `fetch_add` is
//! atomic even when relaxed; only the *observation* of concurrent
//! in-flight updates is unordered.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// Hot-path cost: one relaxed `fetch_add`. Counters are handed out by
/// the registry as `&'static` references so call sites can cache them
/// in a `OnceLock` and skip the name lookup entirely.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` to the counter (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one to the counter (relaxed).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (relaxed load).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the counter (used by `Registry::reset`).
    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one for the value `0`, then one per
/// power-of-two magnitude up to `2^63..=u64::MAX`.
pub const BUCKETS: usize = 65;

/// The bucket index a value lands in.
///
/// Bucket `0` holds exactly the value `0`; bucket `k ≥ 1` holds values
/// in `[2^(k-1), 2^k - 1]` (bucket `64` tops out at `u64::MAX`). This
/// is `⌊log₂ v⌋ + 1` computed with a single `leading_zeros`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The smallest value that lands in bucket `k` (inverse of
/// [`bucket_of`], used for rendering).
#[inline]
pub fn bucket_floor(k: usize) -> u64 {
    debug_assert!(k < BUCKETS);
    if k == 0 {
        0
    } else {
        1u64 << (k - 1)
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically latencies in
/// nanoseconds, or sizes in elements).
///
/// Recording touches five relaxed atomics: the bucket, the sample
/// count, the running sum, and min/max via `fetch_min`/`fetch_max`.
/// There is no lock and no allocation, so histograms are safe to
/// record into from every pool worker concurrently.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample (relaxed; lock-free).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping on the sum needs ~585 years of nanoseconds; accepted.
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.min.load(Ordering::Relaxed))
        }
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.max.load(Ordering::Relaxed))
        }
    }

    /// The count in bucket `k`.
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k].load(Ordering::Relaxed)
    }

    /// Empty the histogram (used by `Registry::reset`).
    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bucketing edge cases the satellite task pins: 0, u64::MAX,
    /// and every power-of-two boundary (both sides).
    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_of(1u64 << 63), 64);
        assert_eq!(bucket_of((1u64 << 63) - 1), 63);
        for k in 1..BUCKETS {
            let lo = bucket_floor(k);
            assert_eq!(bucket_of(lo), k, "floor of bucket {k}");
            if k > 1 {
                assert_eq!(bucket_of(lo - 1), k - 1, "below floor of bucket {k}");
            }
            let hi = if k == 64 { u64::MAX } else { (lo << 1) - 1 };
            assert_eq!(bucket_of(hi), k, "ceiling of bucket {k}");
        }
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(64), 1u64 << 63);
    }

    #[test]
    fn histogram_records_and_resets() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        for v in [0, 1, 1, 7, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(64), 1);
        // Bucket mass accounts for every sample.
        let mass: u64 = (0..BUCKETS).map(|k| h.bucket(k)).sum();
        assert_eq!(mass, h.count());
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!((0..BUCKETS).map(|k| h.bucket(k)).sum::<u64>(), 0);
    }

    #[test]
    fn counter_adds() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
