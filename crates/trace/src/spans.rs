//! Request-scoped span trees: per-thread span rings, `TraceId`
//! correlation, and flamegraph/Chrome exports.
//!
//! When tracing is on, every `span!` site — in addition to recording
//! its duration into the cumulative histogram — appends one
//! [`SpanRecord`] `(site, parent, start_ns, dur_ns, trace_id)` into a
//! **bounded per-thread ring**. Parenthood comes from a thread-local
//! stack of open spans (RAII nesting), and the trace id from a
//! thread-local *ambient* id that request handlers set for the
//! duration of one request ([`ambient_guard`]); `kpa-pool` forwards
//! the submitter's ambient id into its workers so chunk spans executed
//! on other threads still stitch into the right request tree.
//!
//! Rings are registered globally on first use per thread, so a
//! collector ([`snapshot_span_records`] / [`take_span_records`]) can
//! gather every thread's records; [`stitch_span_trees`] groups them
//! by trace id and rebuilds the call trees, which export as Chrome
//! `trace_event` JSON ([`spans_to_chrome_json`]) or flamegraph-foldable
//! stacks ([`spans_to_folded`]).
//!
//! While tracing is disabled none of this runs — the `span!` macro's
//! disabled arm is still exactly one relaxed load and a branch. While
//! enabled, recording costs one uncontended mutex lock on the thread's
//! own ring (the collector is the only other party that ever takes
//! it). The per-thread ring capacity is [`SPAN_RING_CAPACITY`] records
//! unless `KPA_TRACE_SPANS` overrides it (read once; `0` disables span
//! recording entirely while keeping histograms live).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::Histogram;
use crate::report::json_escape;

/// Default per-thread span-ring capacity (records; oldest evicted and
/// counted as dropped past this). Override with `KPA_TRACE_SPANS`.
pub const SPAN_RING_CAPACITY: usize = 4096;

/// A request-correlation id. `0` ([`TraceId::NONE`]) means "no request
/// context"; real ids are allocated process-monotonically by
/// [`next_trace_id`] and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The absent id: spans recorded outside any request carry it.
    pub const NONE: TraceId = TraceId(0);

    /// Is this a real (request-scoped) id?
    #[must_use]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The wire form: 16 hex digits, matching the serve protocol's
    /// bit-faithful word encoding.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the wire form back ([`TraceId::to_hex`]'s inverse).
    #[must_use]
    pub fn from_hex(s: &str) -> Option<TraceId> {
        (s.len() == 16)
            .then(|| u64::from_str_radix(s, 16).ok())
            .flatten()
            .map(TraceId)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Allocate the next process-unique trace id (never [`TraceId::NONE`]).
pub fn next_trace_id() -> TraceId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// One finished span, as recorded into a thread ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The `span!` site's histogram name (interned; `'static`).
    pub site: &'static str,
    /// Process-unique span sequence number.
    pub seq: u64,
    /// `seq` of the enclosing open span on the same thread, `0` for
    /// roots.
    pub parent: u64,
    /// Start time, nanoseconds since the registry epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// The ambient [`TraceId`] when the span opened (`0` = none).
    pub trace_id: u64,
    /// Recording thread's ring index (stable per thread, first-use
    /// order).
    pub thread: u64,
}

/// A `span!` call site: the cumulative histogram plus the interned
/// site name, cached together behind the macro's `OnceLock`.
#[derive(Debug)]
pub struct SpanSite {
    pub(crate) name: &'static str,
    pub(crate) hist: &'static Histogram,
}

impl SpanSite {
    pub(crate) fn new(name: &'static str, hist: &'static Histogram) -> SpanSite {
        SpanSite { name, hist }
    }

    /// The site's (histogram) name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The site's cumulative duration histogram.
    #[must_use]
    pub fn histogram(&self) -> &'static Histogram {
        self.hist
    }
}

struct RingState {
    capacity: usize,
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

struct ThreadRing {
    index: u64,
    state: Mutex<RingState>,
}

impl ThreadRing {
    fn push(&self, record: SpanRecord) {
        let mut state = self.state.lock().expect("span ring");
        if state.records.len() >= state.capacity {
            state.records.pop_front();
            state.dropped += 1;
        }
        state.records.push_back(record);
    }
}

/// Every thread's ring, registration order = thread index order.
fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The per-thread ring capacity: `KPA_TRACE_SPANS` when set to a
/// non-negative integer (0 disables recording), else
/// [`SPAN_RING_CAPACITY`]. Read once per process.
pub fn span_ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("KPA_TRACE_SPANS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(SPAN_RING_CAPACITY)
    })
}

thread_local! {
    /// This thread's ring (registered globally on first use).
    static LOCAL_RING: RefCell<Option<Arc<ThreadRing>>> = const { RefCell::new(None) };
    /// Stack of open recorded spans (their `seq`s), for parenthood.
    static OPEN_SPANS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// The ambient request id spans record under.
    static AMBIENT: Cell<u64> = const { Cell::new(0) };
}

fn local_ring() -> Arc<ThreadRing> {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(ring) = slot.as_ref() {
            return Arc::clone(ring);
        }
        static NEXT_INDEX: AtomicU64 = AtomicU64::new(0);
        let ring = Arc::new(ThreadRing {
            index: NEXT_INDEX.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(RingState {
                capacity: span_ring_capacity().max(1),
                records: VecDeque::new(),
                dropped: 0,
            }),
        });
        rings().lock().expect("span rings").push(Arc::clone(&ring));
        *slot = Some(Arc::clone(&ring));
        ring
    })
}

/// The current thread's ambient trace id ([`TraceId::NONE`] outside
/// any request).
#[must_use]
pub fn current_trace_id() -> TraceId {
    TraceId(AMBIENT.with(Cell::get))
}

/// RAII guard restoring the previous ambient trace id on drop.
/// Obtained from [`ambient_guard`].
#[derive(Debug)]
#[must_use = "the ambient id reverts when this guard drops"]
pub struct AmbientGuard {
    previous: Option<u64>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            AMBIENT.with(|cell| cell.set(previous));
        }
    }
}

/// Set the thread's ambient trace id for the guard's lifetime. While
/// tracing is disabled this is a no-op costing one relaxed load, so
/// request handlers can install it unconditionally.
pub fn ambient_guard(id: TraceId) -> AmbientGuard {
    if !crate::enabled() {
        return AmbientGuard { previous: None };
    }
    let previous = AMBIENT.with(|cell| cell.replace(id.0));
    AmbientGuard {
        previous: Some(previous),
    }
}

/// An open, recorded span: created by `Span` when tracing is on,
/// finished (with the measured duration) on drop.
#[derive(Debug)]
pub(crate) struct ActiveSpan {
    site: &'static str,
    seq: u64,
    parent: u64,
    start_ns: u64,
    trace_id: u64,
}

impl ActiveSpan {
    /// Open a recorded span at `site`, pushing it on the thread's open
    /// stack. Returns `None` when span recording is disabled
    /// (`KPA_TRACE_SPANS=0`).
    pub(crate) fn begin(site: &'static str) -> Option<ActiveSpan> {
        if span_ring_capacity() == 0 {
            return None;
        }
        static SEQ: AtomicU64 = AtomicU64::new(1);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(seq);
            parent
        });
        Some(ActiveSpan {
            site,
            seq,
            parent,
            start_ns: crate::registry().now_ns(),
            trace_id: AMBIENT.with(Cell::get),
        })
    }

    /// Close the span with its measured duration and append the record
    /// to this thread's ring.
    pub(crate) fn finish(self, dur_ns: u64) {
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            // RAII drop order makes this the top of the stack; an
            // out-of-order drop (a span moved out of its scope) is
            // tolerated by removing it wherever it sits.
            if let Some(pos) = stack.iter().rposition(|&seq| seq == self.seq) {
                stack.remove(pos);
            }
        });
        let ring = local_ring();
        ring.push(SpanRecord {
            site: self.site,
            seq: self.seq,
            parent: self.parent,
            start_ns: self.start_ns,
            dur_ns,
            trace_id: self.trace_id,
            thread: ring.index,
        });
    }
}

fn collect(drain: bool) -> (Vec<SpanRecord>, u64) {
    let rings = rings().lock().expect("span rings");
    let mut out = Vec::new();
    let mut dropped = 0;
    for ring in rings.iter() {
        let mut state = ring.state.lock().expect("span ring");
        dropped += state.dropped;
        if drain {
            out.extend(state.records.drain(..));
            state.dropped = 0;
        } else {
            out.extend(state.records.iter().cloned());
        }
    }
    out.sort_by_key(|r| (r.start_ns, r.seq));
    (out, dropped)
}

/// A non-draining copy of every thread's span records, sorted by
/// start time. The second element counts records evicted from full
/// rings since the last drain.
#[must_use]
pub fn snapshot_span_records() -> (Vec<SpanRecord>, u64) {
    collect(false)
}

/// Drain every thread's span ring (and reset the dropped counts),
/// returning the records sorted by start time — the export path for
/// one run's span dump.
#[must_use]
pub fn take_span_records() -> (Vec<SpanRecord>, u64) {
    collect(true)
}

/// Empty every ring without returning the records (`Registry::reset`).
pub(crate) fn reset_spans() {
    let _ = collect(true);
}

/// One node of a stitched span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans (opened while this one was open), start-ordered.
    pub children: Vec<SpanNode>,
}

/// All spans of one request, stitched into call trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// The request's [`TraceId`] value (`0` collects ambient-less
    /// spans).
    pub trace_id: u64,
    /// Root spans (no surviving parent record), start-ordered.
    pub roots: Vec<SpanNode>,
}

/// Group records by trace id and rebuild each request's call trees
/// from the parent links. A child whose parent record was evicted
/// from its ring is promoted to a root rather than lost.
#[must_use]
pub fn stitch_span_trees(records: &[SpanRecord]) -> Vec<SpanTree> {
    let mut by_trace: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for record in records {
        by_trace.entry(record.trace_id).or_default().push(record);
    }
    by_trace
        .into_iter()
        .map(|(trace_id, group)| {
            let present: std::collections::BTreeSet<u64> = group.iter().map(|r| r.seq).collect();
            // Children grouped under each parent, then built desc-first.
            let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
            let mut roots: Vec<&SpanRecord> = Vec::new();
            for record in &group {
                if record.parent != 0 && present.contains(&record.parent) {
                    children.entry(record.parent).or_default().push(record);
                } else {
                    roots.push(record);
                }
            }
            fn build(record: &SpanRecord, children: &BTreeMap<u64, Vec<&SpanRecord>>) -> SpanNode {
                let kids = children
                    .get(&record.seq)
                    .map(|kids| kids.iter().map(|k| build(k, children)).collect())
                    .unwrap_or_default();
                SpanNode {
                    record: record.clone(),
                    children: kids,
                }
            }
            SpanTree {
                trace_id,
                roots: roots.iter().map(|r| build(r, &children)).collect(),
            }
        })
        .collect()
}

/// Per-site aggregate over a batch of span records, hottest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSiteStat {
    /// The `span!` site name.
    pub site: &'static str,
    /// Recorded spans at this site.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// Aggregate records site-by-site, sorted by total time descending
/// (ties broken by name for determinism) — the "hottest span sites"
/// view `kpa-top` and the `metrics` op serve.
#[must_use]
pub fn span_site_stats(records: &[SpanRecord]) -> Vec<SpanSiteStat> {
    let mut by_site: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for record in records {
        let entry = by_site.entry(record.site).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += record.dur_ns;
        entry.2 = entry.2.max(record.dur_ns);
    }
    let mut stats: Vec<SpanSiteStat> = by_site
        .into_iter()
        .map(|(site, (count, total_ns, max_ns))| SpanSiteStat {
            site,
            count,
            total_ns,
            max_ns,
        })
        .collect();
    stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.site.cmp(b.site)));
    stats
}

/// Export records as Chrome `trace_event` JSON (load in
/// `chrome://tracing` or Perfetto): one complete (`"ph": "X"`) event
/// per span, microsecond timestamps relative to the registry epoch,
/// the ring index as the tid, and the trace id in `args`.
#[must_use]
pub fn spans_to_chrome_json(records: &[SpanRecord]) -> String {
    let mut s = String::with_capacity(64 + records.len() * 96);
    s.push_str("{\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n{{\"name\":{},\"cat\":\"kpa\",\"ph\":\"X\",\"ts\":{}.{:03},\
             \"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":\"{:016x}\",\
             \"seq\":{},\"parent\":{}}}}}",
            json_escape(r.site),
            r.start_ns / 1_000,
            r.start_ns % 1_000,
            r.dur_ns / 1_000,
            r.dur_ns % 1_000,
            r.thread,
            r.trace_id,
            r.seq,
            r.parent,
        );
    }
    if !records.is_empty() {
        s.push('\n');
    }
    s.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    s
}

/// Export stitched trees as flamegraph-foldable stacks: one
/// `root;child;leaf self_ns` line per node, where self time is the
/// span's duration minus its children's (clamped at zero). Feed to
/// `flamegraph.pl` or any FlameGraph-compatible renderer.
#[must_use]
pub fn spans_to_folded(trees: &[SpanTree]) -> String {
    fn walk(node: &SpanNode, prefix: &str, out: &mut String) {
        let path = if prefix.is_empty() {
            node.record.site.to_owned()
        } else {
            format!("{prefix};{}", node.record.site)
        };
        let child_ns: u64 = node.children.iter().map(|c| c.record.dur_ns).sum();
        let self_ns = node.record.dur_ns.saturating_sub(child_ns);
        let _ = writeln!(out, "{path} {self_ns}");
        for child in &node.children {
            walk(child, &path, out);
        }
    }
    let mut out = String::new();
    for tree in trees {
        for root in &tree.roots {
            walk(root, "", &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(site: &'static str, seq: u64, parent: u64, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            site,
            seq,
            parent,
            start_ns: start,
            dur_ns: dur,
            trace_id: 7,
            thread: 0,
        }
    }

    #[test]
    fn trace_ids_are_unique_and_round_trip_hex() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a.is_some() && b.is_some());
        assert_ne!(a, b);
        assert!(!TraceId::NONE.is_some());
        let hex = a.to_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(TraceId::from_hex(&hex), Some(a));
        assert_eq!(format!("{a}"), hex);
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex("00zz000000000000"), None);
    }

    #[test]
    fn stitching_rebuilds_nesting_and_promotes_orphans() {
        let records = vec![
            rec("root", 1, 0, 0, 100),
            rec("child", 2, 1, 10, 30),
            rec("grandchild", 3, 2, 12, 5),
            rec("sibling", 4, 1, 50, 20),
            // Parent 99 was evicted from its ring: promoted to root.
            rec("orphan", 5, 99, 80, 7),
        ];
        let trees = stitch_span_trees(&records);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.trace_id, 7);
        assert_eq!(tree.roots.len(), 2, "true root plus the orphan");
        let root = &tree.roots[0];
        assert_eq!(root.record.site, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].record.site, "child");
        assert_eq!(root.children[0].children[0].record.site, "grandchild");
        assert_eq!(tree.roots[1].record.site, "orphan");
    }

    #[test]
    fn stitching_separates_trace_ids() {
        let mut a = rec("a", 1, 0, 0, 10);
        a.trace_id = 1;
        let mut b = rec("b", 2, 0, 5, 10);
        b.trace_id = 2;
        let trees = stitch_span_trees(&[a, b]);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace_id, 1);
        assert_eq!(trees[1].trace_id, 2);
    }

    #[test]
    fn site_stats_rank_by_total_time() {
        let records = vec![
            rec("cold", 1, 0, 0, 10),
            rec("hot", 2, 0, 0, 100),
            rec("hot", 3, 0, 0, 300),
        ];
        let stats = span_site_stats(&records);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].site, "hot");
        assert_eq!(stats[0].count, 2);
        assert_eq!(stats[0].total_ns, 400);
        assert_eq!(stats[0].max_ns, 300);
        assert_eq!(stats[1].site, "cold");
    }

    #[test]
    fn chrome_export_is_wellformed_trace_event_json() {
        let records = vec![rec("a.b_ns", 1, 0, 1_500, 2_250), rec("c", 2, 1, 2_000, 10)];
        let json = spans_to_chrome_json(&records);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"a.b_ns\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.250"));
        assert!(json.contains("\"trace_id\":\"0000000000000007\""));
        assert!(json.contains("\"parent\":1"));
        let opens = json.matches('{').count() + json.matches('[').count();
        let closes = json.matches('}').count() + json.matches(']').count();
        assert_eq!(opens, closes);
        assert!(spans_to_chrome_json(&[]).contains("\"traceEvents\":[]"));
    }

    #[test]
    fn folded_export_subtracts_child_time() {
        let records = vec![rec("root", 1, 0, 0, 100), rec("child", 2, 1, 10, 30)];
        let folded = spans_to_folded(&stitch_span_trees(&records));
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines, vec!["root 70", "root;child 30"]);
    }

    #[test]
    fn ring_bounds_and_drops() {
        let ring = ThreadRing {
            index: 0,
            state: Mutex::new(RingState {
                capacity: 2,
                records: VecDeque::new(),
                dropped: 0,
            }),
        };
        for seq in 1..=5 {
            ring.push(rec("x", seq, 0, seq, 1));
        }
        let state = ring.state.lock().unwrap();
        assert_eq!(state.records.len(), 2);
        assert_eq!(state.dropped, 3);
        assert_eq!(state.records.front().unwrap().seq, 4, "oldest evicted");
    }
}
