//! # kpa-trace — zero-dependency tracing/metrics for the kpa workspace
//!
//! A process-global [`Registry`] of named [`Counter`]s and
//! log₂-bucketed latency [`Histogram`]s, RAII [`Span`] timers, and a
//! fixed-capacity ring-buffer event log — all hermetic (std only,
//! matching the workspace's offline-build policy) and all compiled
//! down to *true no-ops* unless tracing is switched on.
//!
//! ## Gating
//!
//! Tracing is off by default. It turns on when either
//!
//! - the `KPA_TRACE` environment variable is set to `1`, `true`, or
//!   `on` (checked once, on first use), or
//! - [`set_enabled`]`(true)` / [`Trace::enabled`]`(true)` is called at
//!   runtime (which overrides the environment either way).
//!
//! While disabled, every instrumentation macro costs exactly one
//! relaxed atomic load and a predictable branch — no clock reads, no
//! locks, no allocation — so instrumented hot paths are
//! observationally (and, within measurement noise, temporally)
//! identical to uninstrumented ones. `tests/trace_invisibility.rs` at
//! the workspace root pins the observational half of that guarantee
//! bit-for-bit.
//!
//! ## Recording
//!
//! ```
//! kpa_trace::set_enabled(true);
//! kpa_trace::count!("demo.widgets");            // +1
//! kpa_trace::count!("demo.widgets", 4);         // +n
//! kpa_trace::record!("demo.batch_len", 17);     // histogram sample
//! {
//!     let _guard = kpa_trace::span!("demo.step_ns"); // RAII timer
//!     // ... timed region ...
//! }
//! kpa_trace::event!("demo.milestone", 3);       // ring-buffer event
//! let report = kpa_trace::registry().snapshot();
//! assert!(report.counter("demo.widgets") >= 5);
//! # kpa_trace::set_enabled(false);
//! ```
//!
//! The macros cache the `&'static` metric behind a per-call-site
//! `OnceLock`, so the registry's name map is consulted once per call
//! site, not once per event. Because of that cache, macro names must
//! be *constant per call site*; for dynamically named metrics (e.g.
//! per-shard counters) call [`Registry::counter`] directly and cache
//! the references yourself.
//!
//! ## Naming scheme
//!
//! `layer.noun[_qualifier]`, dot-separated layers, snake-case leaves:
//! `pool.steals`, `measure.dense_query`, `assign.space_cache.hit`,
//! `logic.pr_memo_hit`, `betting.class_sweep`. Histograms carry a
//! unit suffix (`_ns` for nanoseconds, `_len`/`_size` for element
//! counts). DESIGN.md §3.2e is the canonical registry of names.
//!
//! ## Event-ring capacity
//!
//! The global event ring holds [`RING_CAPACITY`] events by default;
//! set `KPA_TRACE_EVENTS=<n>` (read once, at first registry use) to
//! bound — or widen — event memory for long-running processes such as
//! the `kpa-serve` soak bench.
//!
//! ## Scoped metrics
//!
//! Global metrics live forever; *per-entity* metrics (one service
//! session's counters, say) must not. [`Scope`] is a named, droppable
//! metric group built from the same counter/histogram primitives and
//! snapshotting into the same [`TraceReport`] — see its docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod report;
mod rolling;
mod scope;
mod spans;

pub use metrics::{bucket_floor, bucket_of, Counter, Histogram, BUCKETS};
pub use registry::{registry, Event, Registry, RING_CAPACITY};
pub use report::{
    json_escape, HistogramSnapshot, TraceReport, WindowedSnapshot, TRACE_SCHEMA_VERSION,
};
pub use rolling::{RollingHistogram, ROLLING_SLOTS, ROLLING_SLOT_NS_SHIFT};
pub use scope::Scope;
pub use spans::{
    ambient_guard, current_trace_id, next_trace_id, snapshot_span_records, span_ring_capacity,
    span_site_stats, spans_to_chrome_json, spans_to_folded, stitch_span_trees, take_span_records,
    AmbientGuard, SpanNode, SpanRecord, SpanSite, SpanSiteStat, SpanTree, TraceId,
    SPAN_RING_CAPACITY,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// 0 = uninitialised (consult `KPA_TRACE` on first read), 1 = off,
/// 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Is tracing currently enabled? One relaxed load on the steady state;
/// the very first call (per process) consults the `KPA_TRACE`
/// environment variable.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("KPA_TRACE")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    let want = if on { 2 } else { 1 };
    // Racing first readers agree on the env value; a concurrent
    // `set_enabled` wins over the env default.
    match STATE.compare_exchange(0, want, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => on,
        Err(actual) => actual == 2,
    }
}

/// Switch tracing on or off at runtime (overrides `KPA_TRACE`).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Facade named after the API in the issue tracker: `Trace::enabled(b)`
/// flips the global switch, `Trace::is_enabled()` reads it.
#[derive(Debug, Clone, Copy)]
pub struct Trace;

impl Trace {
    /// Switch tracing on or off (same as [`set_enabled`]).
    pub fn enabled(on: bool) {
        set_enabled(on);
    }

    /// Is tracing currently on? (same as [`enabled`]).
    pub fn is_enabled() -> bool {
        enabled()
    }
}

/// RAII timer: measures wall time from construction to drop and
/// records the elapsed nanoseconds into a histogram. Construct via the
/// [`span!`] macro (which skips the clock read entirely when tracing
/// is disabled), [`Span::start`] when you already hold the histogram,
/// or [`Span::start_site`] to additionally append a span-tree record
/// for the request-scoped pipeline.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    hist: &'static Histogram,
    start: Instant,
    /// The span-tree record being built, when opened via a
    /// [`SpanSite`] (and span recording isn't disabled).
    active: Option<spans::ActiveSpan>,
}

impl Span {
    /// Start timing into `hist` (reads the clock). Histogram-only: no
    /// span-tree record is produced.
    #[inline]
    pub fn start(hist: &'static Histogram) -> Span {
        Span {
            inner: Some(SpanInner {
                hist,
                start: Instant::now(),
                active: None,
            }),
        }
    }

    /// Start timing at a registered [`SpanSite`]: records the duration
    /// into the site's cumulative histogram *and* appends a
    /// `(site, parent, start_ns, dur_ns, trace_id)` record to the
    /// thread's span ring — what [`span!`] does while tracing is on.
    #[inline]
    pub fn start_site(site: &'static SpanSite) -> Span {
        Span {
            inner: Some(SpanInner {
                hist: site.histogram(),
                active: spans::ActiveSpan::begin(site.name()),
                start: Instant::now(),
            }),
        }
    }

    /// A span that records nothing and never reads the clock — what
    /// [`span!`] returns while tracing is disabled.
    #[inline]
    pub fn disabled() -> Span {
        Span { inner: None }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur_ns = inner.start.elapsed().as_nanos() as u64;
            inner.hist.record(dur_ns);
            if let Some(active) = inner.active {
                active.finish(dur_ns);
            }
        }
    }
}

/// Bump a named counter by 1 (`count!("name")`) or by `n`
/// (`count!("name", n)`). Compiles to a relaxed load + branch while
/// tracing is disabled. The name must be constant per call site.
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static __KPA_TRACE_SLOT: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            __KPA_TRACE_SLOT
                .get_or_init(|| $crate::registry().counter($name))
                .add($n as u64);
        }
    };
}

/// Record one sample into a named histogram. Compiles to a relaxed
/// load + branch while tracing is disabled. The name must be constant
/// per call site.
#[macro_export]
macro_rules! record {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static __KPA_TRACE_SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            __KPA_TRACE_SLOT
                .get_or_init(|| $crate::registry().histogram($name))
                .record($v as u64);
        }
    };
}

/// Start an RAII timer recording elapsed nanoseconds into a named
/// histogram; bind the result (`let _guard = span!("x_ns");`). While
/// tracing is disabled this neither reads the clock nor records.
/// While enabled, the site also appends a span-tree record carrying
/// the thread's ambient [`TraceId`] (see [`ambient_guard`]) to the
/// per-thread span ring, unless `KPA_TRACE_SPANS=0` turned span
/// recording off.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            static __KPA_TRACE_SLOT: ::std::sync::OnceLock<&'static $crate::SpanSite> =
                ::std::sync::OnceLock::new();
            $crate::Span::start_site(
                __KPA_TRACE_SLOT.get_or_init(|| $crate::registry().span_site($name)),
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Append a named event (with a `u64` payload) to the global ring
/// buffer, and bump the same-named occurrence counter. No-op while
/// tracing is disabled.
#[macro_export]
macro_rules! event {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            $crate::registry().event($name, $v as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The single test in this crate that flips the process-global
    /// switch: disabled macros record nothing, enabled macros record,
    /// and a reset zeroes the registry. Kept as one sequential `#[test]`
    /// because the flag is global to the test binary.
    #[test]
    fn lifecycle_disabled_then_enabled() {
        set_enabled(false);
        assert!(!enabled());
        assert!(!Trace::is_enabled());
        count!("test.lifecycle.c");
        record!("test.lifecycle.h", 123);
        event!("test.lifecycle.e", 1);
        {
            let _g = span!("test.lifecycle.span_ns");
        }
        {
            // While off, the ambient guard must not touch TLS either.
            let _g = ambient_guard(TraceId(42));
            assert_eq!(current_trace_id(), TraceId::NONE);
        }
        let off = registry().snapshot();
        assert!(!off.enabled);
        assert_eq!(off.counter("test.lifecycle.c"), 0);
        assert!(!off.histograms.contains_key("test.lifecycle.h"));
        assert!(off.events.iter().all(|e| e.name != "test.lifecycle.e"));
        let (off_spans, _) = snapshot_span_records();
        assert!(
            off_spans
                .iter()
                .all(|r| !r.site.starts_with("test.lifecycle.")),
            "disabled span! sites must not reach the span rings"
        );

        Trace::enabled(true);
        assert!(enabled());
        count!("test.lifecycle.c");
        count!("test.lifecycle.c", 2);
        record!("test.lifecycle.h", 123);
        event!("test.lifecycle.e", 7);
        registry().rolling("test.lifecycle.roll_ns").record(900);
        let tid = next_trace_id();
        {
            let _req = ambient_guard(tid);
            assert_eq!(current_trace_id(), tid);
            let _g = span!("test.lifecycle.span_ns");
            let _inner = span!("test.lifecycle.inner_ns");
        }
        assert_eq!(current_trace_id(), TraceId::NONE, "guard restores on drop");
        let on = registry().snapshot();
        assert!(on.enabled);
        assert_eq!(on.counter("test.lifecycle.c"), 3);
        let h = &on.histograms["test.lifecycle.h"];
        assert_eq!(h.count, 1);
        assert_eq!(h.min, Some(123));
        let sp = &on.histograms["test.lifecycle.span_ns"];
        assert_eq!(sp.count, 1);
        assert_eq!(
            on.counter("test.lifecycle.e"),
            1,
            "events count occurrences"
        );
        assert!(on
            .events
            .iter()
            .any(|e| e.name == "test.lifecycle.e" && e.value == 7));
        assert_eq!(on.windowed["test.lifecycle.roll_ns"].count, 1);
        assert_eq!(on.windowed["test.lifecycle.roll_ns"].p50, Some(512));
        assert!(on
            .span_sites
            .iter()
            .any(|s| s.site == "test.lifecycle.span_ns" && s.count == 1));

        // The span records stitched into a tree: the inner span is a
        // child of the outer one and both carry the request's id.
        let (records, _) = snapshot_span_records();
        let outer = records
            .iter()
            .find(|r| r.site == "test.lifecycle.span_ns")
            .expect("outer span recorded");
        let inner = records
            .iter()
            .find(|r| r.site == "test.lifecycle.inner_ns")
            .expect("inner span recorded");
        assert_eq!(outer.trace_id, tid.0);
        assert_eq!(inner.trace_id, tid.0);
        assert_eq!(inner.parent, outer.seq, "nesting comes from the open stack");
        assert_eq!(outer.parent, 0, "outermost span is a root");

        registry().reset();
        let zeroed = registry().snapshot();
        assert_eq!(zeroed.counter("test.lifecycle.c"), 0);
        assert_eq!(zeroed.histograms["test.lifecycle.h"].count, 0);
        assert!(zeroed.events.is_empty());
        assert_eq!(zeroed.windowed["test.lifecycle.roll_ns"].count, 0);
        assert!(
            !zeroed
                .span_sites
                .iter()
                .any(|s| s.site.starts_with("test.lifecycle.")),
            "reset drains the span rings"
        );
        set_enabled(false);
    }
}
