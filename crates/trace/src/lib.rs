//! # kpa-trace — zero-dependency tracing/metrics for the kpa workspace
//!
//! A process-global [`Registry`] of named [`Counter`]s and
//! log₂-bucketed latency [`Histogram`]s, RAII [`Span`] timers, and a
//! fixed-capacity ring-buffer event log — all hermetic (std only,
//! matching the workspace's offline-build policy) and all compiled
//! down to *true no-ops* unless tracing is switched on.
//!
//! ## Gating
//!
//! Tracing is off by default. It turns on when either
//!
//! - the `KPA_TRACE` environment variable is set to `1`, `true`, or
//!   `on` (checked once, on first use), or
//! - [`set_enabled`]`(true)` / [`Trace::enabled`]`(true)` is called at
//!   runtime (which overrides the environment either way).
//!
//! While disabled, every instrumentation macro costs exactly one
//! relaxed atomic load and a predictable branch — no clock reads, no
//! locks, no allocation — so instrumented hot paths are
//! observationally (and, within measurement noise, temporally)
//! identical to uninstrumented ones. `tests/trace_invisibility.rs` at
//! the workspace root pins the observational half of that guarantee
//! bit-for-bit.
//!
//! ## Recording
//!
//! ```
//! kpa_trace::set_enabled(true);
//! kpa_trace::count!("demo.widgets");            // +1
//! kpa_trace::count!("demo.widgets", 4);         // +n
//! kpa_trace::record!("demo.batch_len", 17);     // histogram sample
//! {
//!     let _guard = kpa_trace::span!("demo.step_ns"); // RAII timer
//!     // ... timed region ...
//! }
//! kpa_trace::event!("demo.milestone", 3);       // ring-buffer event
//! let report = kpa_trace::registry().snapshot();
//! assert!(report.counter("demo.widgets") >= 5);
//! # kpa_trace::set_enabled(false);
//! ```
//!
//! The macros cache the `&'static` metric behind a per-call-site
//! `OnceLock`, so the registry's name map is consulted once per call
//! site, not once per event. Because of that cache, macro names must
//! be *constant per call site*; for dynamically named metrics (e.g.
//! per-shard counters) call [`Registry::counter`] directly and cache
//! the references yourself.
//!
//! ## Naming scheme
//!
//! `layer.noun[_qualifier]`, dot-separated layers, snake-case leaves:
//! `pool.steals`, `measure.dense_query`, `assign.space_cache.hit`,
//! `logic.pr_memo_hit`, `betting.class_sweep`. Histograms carry a
//! unit suffix (`_ns` for nanoseconds, `_len`/`_size` for element
//! counts). DESIGN.md §3.2e is the canonical registry of names.
//!
//! ## Event-ring capacity
//!
//! The global event ring holds [`RING_CAPACITY`] events by default;
//! set `KPA_TRACE_EVENTS=<n>` (read once, at first registry use) to
//! bound — or widen — event memory for long-running processes such as
//! the `kpa-serve` soak bench.
//!
//! ## Scoped metrics
//!
//! Global metrics live forever; *per-entity* metrics (one service
//! session's counters, say) must not. [`Scope`] is a named, droppable
//! metric group built from the same counter/histogram primitives and
//! snapshotting into the same [`TraceReport`] — see its docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod report;
mod scope;

pub use metrics::{bucket_floor, bucket_of, Counter, Histogram, BUCKETS};
pub use registry::{registry, Event, Registry, RING_CAPACITY};
pub use report::{json_escape, HistogramSnapshot, TraceReport, TRACE_SCHEMA_VERSION};
pub use scope::Scope;

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// 0 = uninitialised (consult `KPA_TRACE` on first read), 1 = off,
/// 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Is tracing currently enabled? One relaxed load on the steady state;
/// the very first call (per process) consults the `KPA_TRACE`
/// environment variable.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("KPA_TRACE")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    let want = if on { 2 } else { 1 };
    // Racing first readers agree on the env value; a concurrent
    // `set_enabled` wins over the env default.
    match STATE.compare_exchange(0, want, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => on,
        Err(actual) => actual == 2,
    }
}

/// Switch tracing on or off at runtime (overrides `KPA_TRACE`).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Facade named after the API in the issue tracker: `Trace::enabled(b)`
/// flips the global switch, `Trace::is_enabled()` reads it.
#[derive(Debug, Clone, Copy)]
pub struct Trace;

impl Trace {
    /// Switch tracing on or off (same as [`set_enabled`]).
    pub fn enabled(on: bool) {
        set_enabled(on);
    }

    /// Is tracing currently on? (same as [`enabled`]).
    pub fn is_enabled() -> bool {
        enabled()
    }
}

/// RAII timer: measures wall time from construction to drop and
/// records the elapsed nanoseconds into a histogram. Construct via the
/// [`span!`] macro (which skips the clock read entirely when tracing
/// is disabled) or [`Span::start`] when you already hold the
/// histogram.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    inner: Option<(&'static Histogram, Instant)>,
}

impl Span {
    /// Start timing into `hist` (reads the clock).
    #[inline]
    pub fn start(hist: &'static Histogram) -> Span {
        Span {
            inner: Some((hist, Instant::now())),
        }
    }

    /// A span that records nothing and never reads the clock — what
    /// [`span!`] returns while tracing is disabled.
    #[inline]
    pub fn disabled() -> Span {
        Span { inner: None }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Bump a named counter by 1 (`count!("name")`) or by `n`
/// (`count!("name", n)`). Compiles to a relaxed load + branch while
/// tracing is disabled. The name must be constant per call site.
#[macro_export]
macro_rules! count {
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static __KPA_TRACE_SLOT: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            __KPA_TRACE_SLOT
                .get_or_init(|| $crate::registry().counter($name))
                .add($n as u64);
        }
    };
}

/// Record one sample into a named histogram. Compiles to a relaxed
/// load + branch while tracing is disabled. The name must be constant
/// per call site.
#[macro_export]
macro_rules! record {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            static __KPA_TRACE_SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            __KPA_TRACE_SLOT
                .get_or_init(|| $crate::registry().histogram($name))
                .record($v as u64);
        }
    };
}

/// Start an RAII timer recording elapsed nanoseconds into a named
/// histogram; bind the result (`let _guard = span!("x_ns");`). While
/// tracing is disabled this neither reads the clock nor records.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            static __KPA_TRACE_SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            $crate::Span::start(
                __KPA_TRACE_SLOT.get_or_init(|| $crate::registry().histogram($name)),
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Append a named event (with a `u64` payload) to the global ring
/// buffer, and bump the same-named occurrence counter. No-op while
/// tracing is disabled.
#[macro_export]
macro_rules! event {
    ($name:expr, $v:expr) => {
        if $crate::enabled() {
            $crate::registry().event($name, $v as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The single test in this crate that flips the process-global
    /// switch: disabled macros record nothing, enabled macros record,
    /// and a reset zeroes the registry. Kept as one sequential `#[test]`
    /// because the flag is global to the test binary.
    #[test]
    fn lifecycle_disabled_then_enabled() {
        set_enabled(false);
        assert!(!enabled());
        assert!(!Trace::is_enabled());
        count!("test.lifecycle.c");
        record!("test.lifecycle.h", 123);
        event!("test.lifecycle.e", 1);
        {
            let _g = span!("test.lifecycle.span_ns");
        }
        let off = registry().snapshot();
        assert!(!off.enabled);
        assert_eq!(off.counter("test.lifecycle.c"), 0);
        assert!(!off.histograms.contains_key("test.lifecycle.h"));
        assert!(off.events.iter().all(|e| e.name != "test.lifecycle.e"));

        Trace::enabled(true);
        assert!(enabled());
        count!("test.lifecycle.c");
        count!("test.lifecycle.c", 2);
        record!("test.lifecycle.h", 123);
        event!("test.lifecycle.e", 7);
        {
            let _g = span!("test.lifecycle.span_ns");
        }
        let on = registry().snapshot();
        assert!(on.enabled);
        assert_eq!(on.counter("test.lifecycle.c"), 3);
        let h = &on.histograms["test.lifecycle.h"];
        assert_eq!(h.count, 1);
        assert_eq!(h.min, Some(123));
        let sp = &on.histograms["test.lifecycle.span_ns"];
        assert_eq!(sp.count, 1);
        assert_eq!(
            on.counter("test.lifecycle.e"),
            1,
            "events count occurrences"
        );
        assert!(on
            .events
            .iter()
            .any(|e| e.name == "test.lifecycle.e" && e.value == 7));

        registry().reset();
        let zeroed = registry().snapshot();
        assert_eq!(zeroed.counter("test.lifecycle.c"), 0);
        assert_eq!(zeroed.histograms["test.lifecycle.h"].count, 0);
        assert!(zeroed.events.is_empty());
        set_enabled(false);
    }
}
