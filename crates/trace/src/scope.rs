//! Scoped metric groups: counters and histograms whose lifetime is an
//! object, not the process.
//!
//! The global [`Registry`](crate::Registry) interns every metric name
//! forever — exactly right for the fixed vocabulary of instrumentation
//! points, and exactly wrong for *per-entity* metrics like "queries
//! answered by session 17", whose names are unbounded. A [`Scope`] is
//! the per-entity counterpart: a named, heap-owned group of the same
//! [`Counter`]/[`Histogram`] primitives that drops with its owner,
//! snapshots into the same [`TraceReport`] (so the stable JSON writer
//! and the fixed-width table render it unchanged), and is **not**
//! gated by the global trace switch — a session's own statistics must
//! be reportable whether or not `KPA_TRACE` is on.
//!
//! # Examples
//!
//! ```
//! let scope = kpa_trace::Scope::new("session-1");
//! scope.counter("queries").add(3);
//! scope.histogram("batch_ns").record(1800);
//! let report = scope.snapshot();
//! assert_eq!(report.counter("queries"), 3);
//! assert_eq!(report.histograms["batch_ns"].count, 1);
//! // Dropping the scope releases every metric it owned.
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Histogram};
use crate::report::{HistogramSnapshot, TraceReport, WindowedSnapshot};
use crate::rolling::RollingHistogram;

/// A named, independently owned group of counters and histograms.
///
/// Metric handles are shared `Arc`s: look one up once and update it
/// lock-free from any thread; the scope's maps are only locked on
/// first registration and at snapshot time. See the [module
/// docs](self) for how scopes differ from the global registry.
#[derive(Debug, Default)]
pub struct Scope {
    label: String,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    rollings: Mutex<BTreeMap<String, Arc<RollingHistogram>>>,
}

impl Scope {
    /// An empty scope labelled `label` (the label becomes the
    /// `workload` field of exported snapshots).
    #[must_use]
    pub fn new(label: impl Into<String>) -> Scope {
        Scope {
            label: label.into(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            rollings: Mutex::new(BTreeMap::new()),
        }
    }

    /// The scope's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Look up (or create) the scope-local counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("scope counters");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Look up (or create) the scope-local histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("scope histograms");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// Record one sample into the scope-local histogram called `name`.
    ///
    /// Convenience for `scope.histogram(name).record(v)` — it takes
    /// the registration lock each call, so hot paths should cache the
    /// `Arc` from [`Scope::histogram`] instead.
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Look up (or create) the scope-local rolling-window histogram
    /// called `name`. Rolling histograms wrap cumulative ones at the
    /// call site; [`Scope::record_windowed`] records into both.
    pub fn rolling(&self, name: &str) -> Arc<RollingHistogram> {
        let mut map = self.rollings.lock().expect("scope rollings");
        if let Some(r) = map.get(name) {
            return Arc::clone(r);
        }
        let r = Arc::new(RollingHistogram::new());
        map.insert(name.to_owned(), Arc::clone(&r));
        r
    }

    /// Record one sample into both the cumulative histogram and the
    /// rolling window called `name`, so old readers of the cumulative
    /// stream are untouched while new readers get recent quantiles.
    /// Takes the registration locks each call; hot paths should cache
    /// the two handles instead.
    pub fn record_windowed(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
        self.rolling(name).record(v);
    }

    /// A point-in-time copy of every metric in the scope, in the same
    /// [`TraceReport`] shape the global registry snapshots into — so
    /// [`TraceReport::to_json`] and [`TraceReport::render_table`] work
    /// on it unchanged. Scope reports always carry `enabled: true`
    /// (scopes are not gated) and have no events or rows.
    #[must_use]
    pub fn snapshot(&self) -> TraceReport {
        let counters = {
            let map = self.counters.lock().expect("scope counters");
            map.iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect::<BTreeMap<String, u64>>()
        };
        let histograms = {
            let map = self.histograms.lock().expect("scope histograms");
            map.iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::of(h)))
                .collect::<BTreeMap<String, HistogramSnapshot>>()
        };
        let windowed = {
            let map = self.rollings.lock().expect("scope rollings");
            map.iter()
                .map(|(k, r)| (k.clone(), WindowedSnapshot::of(&r.window())))
                .collect::<BTreeMap<String, WindowedSnapshot>>()
        };
        TraceReport {
            enabled: true,
            counters,
            histograms,
            windowed,
            span_sites: Vec::new(),
            spans_dropped: 0,
            events: Vec::new(),
            dropped_events: 0,
            rows: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_metrics_are_independent_of_the_registry() {
        let scope = Scope::new("unit");
        assert_eq!(scope.label(), "unit");
        scope.counter("q").add(2);
        scope.counter("q").incr();
        scope.histogram("lat_ns").record(100);
        scope.record("lat_ns", 200);
        scope.record_windowed("frame_ns", 1800);
        let report = scope.snapshot();
        assert_eq!(report.counter("q"), 3);
        assert_eq!(report.histograms["lat_ns"].count, 2);
        assert_eq!(
            report.histograms["frame_ns"].count, 1,
            "windowed recording feeds the cumulative stream too"
        );
        assert_eq!(report.windowed["frame_ns"].count, 1);
        assert_eq!(report.windowed["frame_ns"].p50, Some(1024));
        // Nothing reached the process-global registry.
        assert_eq!(crate::registry().snapshot().counter("q"), 0);
        // A second scope with the same metric names starts from zero.
        let other = Scope::new("unit-2");
        assert_eq!(other.snapshot().counter("q"), 0);
    }

    #[test]
    fn scope_handles_are_shared() {
        let scope = Scope::new("unit");
        let a = scope.counter("x");
        let b = scope.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.incr();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn scope_snapshot_serializes_via_the_stable_writer() {
        let scope = Scope::new("session");
        scope.counter("frames").add(7);
        let json = scope.snapshot().to_json("session");
        assert!(json.contains("\"frames\": 7"));
        assert!(json.contains("\"workload\": \"session\""));
    }
}
