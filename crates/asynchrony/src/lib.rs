//! # kpa-asynchrony — type-3 adversaries
//!
//! Section 7 of Halpern & Tuttle, *"Knowledge, Probability, and
//! Adversaries"* (JACM 40(4), 1993): in asynchronous systems an agent
//! may not know *when* the fact it is betting on is tested, so a third
//! type of adversary chooses the stopping points — a **cut** through
//! the agent's sample region.
//!
//! * [`Cut`] — at most one point per run, with its induced (always
//!   fully measurable) probability space;
//! * [`CutClass`] — the classes of type-3 adversaries: arbitrary cuts
//!   (`pts`), global-state cuts (`state`, Fischer–Zuck), horizontal
//!   (clock-forced) cuts, bounded windows (partial synchrony), and the
//!   run-skipping generalized adversary;
//! * [`pts_interval`] / [`prop10_holds`] — the Proposition 10
//!   machinery: quantifying over arbitrary cuts recovers exactly the
//!   inner/outer interval of `P^post`.
//!
//! # Examples
//!
//! ```
//! use kpa_measure::rat;
//! use kpa_system::{PointId, ProtocolBuilder, TreeId};
//! use kpa_asynchrony::Cut;
//!
//! // A clockless observer of two fair tosses: a cut picks the moment
//! // at which "the most recent toss landed heads" is evaluated.
//! let sys = ProtocolBuilder::new(["p"])
//!     .clockless("p")
//!     .coin("c1", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &[])
//!     .coin("c2", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &[])
//!     .build()?;
//! let mut recent = sys.points_satisfying(sys.prop_id("recent:c1=h").unwrap());
//! recent.extend(sys.points_satisfying(sys.prop_id("recent:c2=h").unwrap()));
//!
//! // The horizontal time-1 cut gives probability 1/2.
//! let t1 = Cut::new((0..4).map(|run| PointId { tree: TreeId(0), run, time: 1 }))?;
//! assert_eq!(t1.prob(&sys, &recent)?, rat!(1 / 2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classes;
mod cut;
mod error;
mod prop10;
mod slice;

pub use classes::CutClass;
pub use cut::Cut;
pub use error::AsyncError;
pub use prop10::{class_interval, prop10_holds, pts_interval, region_for};
pub use slice::slice_assignment;
