//! Error types for type-3 adversaries.

use kpa_assign::AssignError;
use std::fmt;

/// Errors arising when constructing cuts or quantifying over cut classes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsyncError {
    /// A cut may contain at most one point per run.
    DuplicateRunPoint,
    /// A cut (or a cut-induced sample) must be nonempty.
    EmptyCut,
    /// The cut class admits no cut of the given region (e.g. no single
    /// time slices the whole region horizontally).
    NoValidCut,
    /// Exact enumeration would be too large; reduce the region or use a
    /// class with closed-form bounds.
    TooLarge {
        /// The number of global states in the region.
        nodes: usize,
        /// The enumeration limit that was exceeded.
        limit: usize,
    },
    /// Building a probability space failed.
    Assign(AssignError),
}

impl fmt::Display for AsyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncError::DuplicateRunPoint => {
                write!(f, "cut contains two points on the same run")
            }
            AsyncError::EmptyCut => write!(f, "cut is empty"),
            AsyncError::NoValidCut => write!(f, "cut class admits no cut of this region"),
            AsyncError::TooLarge { nodes, limit } => write!(
                f,
                "region has {nodes} global states, exceeding the enumeration limit {limit}"
            ),
            AsyncError::Assign(e) => write!(f, "assignment error: {e}"),
        }
    }
}

impl std::error::Error for AsyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsyncError::Assign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AssignError> for AsyncError {
    fn from(e: AssignError) -> AsyncError {
        AsyncError::Assign(e)
    }
}

impl From<kpa_measure::MeasureError> for AsyncError {
    fn from(e: kpa_measure::MeasureError) -> AsyncError {
        AsyncError::Assign(AssignError::Measure(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert!(AsyncError::DuplicateRunPoint
            .to_string()
            .contains("same run"));
        let e = AsyncError::TooLarge {
            nodes: 40,
            limit: 20,
        };
        assert!(e.to_string().contains("40"));
        assert!(e.source().is_none());
        let e: AsyncError = kpa_measure::MeasureError::NonMeasurable.into();
        assert!(e.source().is_some());
    }
}
