//! Proposition 10 and convenience queries over cut classes.
//!
//! Proposition 10 of the paper: `P^post, c ⊨ K_i^{[α,β]} φ` iff
//! `P^pts, c ⊨ K_i^{[α,β]} φ` — playing against a copy of yourself with
//! a completely free type-3 adversary gives exactly the inner/outer
//! bounds of the posterior assignment. The proof constructs, per run,
//! the worst (and best) possible stopping points; [`pts_interval`]
//! implements that construction and [`prop10_holds`] checks the
//! equivalence pointwise.

use crate::classes::CutClass;
use crate::error::AsyncError;
use kpa_assign::{Assignment, ProbAssignment};
use kpa_logic::PointSet;
use kpa_measure::Rat;
use kpa_pool::Pool;
use kpa_system::{AgentId, PointId, System};

/// Minimum points per chunk before [`prop10_holds`] fans out onto the
/// [`kpa_pool`] pool: every point costs a cut-bound optimization plus a
/// posterior interval, so even short sweeps are worth splitting.
const POINT_MIN_CHUNK: usize = 4;

/// The agent's sample region when betting against opponent `j` at `c`:
/// `Tree^j_ic` (with `j = i` this is `Tree_ic` itself).
#[must_use]
pub fn region_for(sys: &System, agent: AgentId, opponent: AgentId, c: PointId) -> PointSet {
    Assignment::opp(opponent).sample(sys, agent, c)
}

/// The `(inf, sup)` probability of `phi` for `agent` at `c` over the
/// given cut class, betting against `opponent`.
///
/// # Errors
///
/// As [`CutClass::bounds`].
pub fn class_interval(
    sys: &System,
    agent: AgentId,
    opponent: AgentId,
    c: PointId,
    phi: &PointSet,
    class: &CutClass,
) -> Result<(Rat, Rat), AsyncError> {
    class.bounds(sys, &region_for(sys, agent, opponent, c), phi)
}

/// The `P^pts` interval: bounds over arbitrary cuts of `Tree_ic`
/// (opponent = the agent itself).
///
/// # Errors
///
/// As [`CutClass::bounds`].
pub fn pts_interval(
    sys: &System,
    agent: AgentId,
    c: PointId,
    phi: &PointSet,
) -> Result<(Rat, Rat), AsyncError> {
    class_interval(sys, agent, agent, c, phi, &CutClass::AllPoints)
}

/// Checks Proposition 10 pointwise: at every point, the `P^pts` interval
/// equals the inner/outer interval of `P^post`.
///
/// # Errors
///
/// As [`CutClass::bounds`], plus space-construction failures of the
/// posterior assignment.
pub fn prop10_holds(sys: &System, agent: AgentId, phi: &PointSet) -> Result<bool, AsyncError> {
    let post = ProbAssignment::new(sys, Assignment::post());
    // `Tree^i_ic = Tree_ic` (betting against yourself is `post`), so
    // the posterior plan's per-point spaces are exactly the run-blocked
    // region spaces `pts_interval` would rebuild: one batched pass
    // replaces a sample extraction + space construction per point.
    let plan = post.sample_plan(agent);
    let points: Vec<PointId> = sys.points().collect();
    // Pointwise checks are independent: sweep chunks of the point list
    // on the pool and conjoin partials in chunk order — the exact
    // boolean a serial sweep computes (each chunk short-circuits
    // internally; `&&` over ordered chunks is associative and exact).
    let _sweep_timer = kpa_trace::span!("async.prop10_ns");
    let partials = Pool::current().par_map_chunks(points.len(), POINT_MIN_CHUNK, |range| {
        kpa_trace::count!("async.prop10_points", range.len() as u64);
        let (mut plan_hits, mut fallbacks) = (0u64, 0u64);
        let mut chunk_ok = true;
        for &c in &points[range] {
            let pts = match plan.space(c) {
                Some(space) => {
                    plan_hits += 1;
                    CutClass::AllPoints.bounds_via(sys, space, phi)?
                }
                None => {
                    fallbacks += 1;
                    pts_interval(sys, agent, c, phi)?
                }
            };
            let direct = post.interval(agent, c, phi)?;
            if pts != direct {
                chunk_ok = false;
                break;
            }
        }
        kpa_trace::count!("async.plan_hit", plan_hits);
        kpa_trace::count!("async.plan_fallback", fallbacks);
        Ok::<bool, AsyncError>(chunk_ok)
    });
    let mut all = true;
    for partial in partials {
        all = all && partial?;
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpa_measure::rat;
    use kpa_system::{ProtocolBuilder, TreeId};

    fn pt(run: usize, time: usize) -> PointId {
        PointId {
            tree: TreeId(0),
            run,
            time,
        }
    }

    /// Clockless p1 and clocked p2 watching n fair tosses (the Section 7
    /// running example at n = 3).
    fn tosses(n: usize) -> kpa_system::System {
        let mut b = ProtocolBuilder::new(["p1", "p2"]).clockless("p1");
        for k in 0..n {
            let name = format!("c{k}");
            b = b.step(&name, {
                let name = name.clone();
                move |_| {
                    ["h", "t"]
                        .map(|o| {
                            // p1 observes only that tossing has begun; it
                            // learns nothing afterwards (clockless).
                            let branch = kpa_system::Branch::new(rat!(1 / 2))
                                .prop(&format!("{name}={o}"))
                                .transient_prop(&format!("recent={o}"));
                            if k == 0 {
                                branch.observe("p1", "go")
                            } else {
                                branch
                            }
                        })
                        .to_vec()
                }
            });
        }
        b.build().unwrap()
    }

    fn recent_heads(sys: &kpa_system::System) -> PointSet {
        sys.points_satisfying(sys.prop_id("recent=h").unwrap())
    }

    #[test]
    fn proposition_10_on_the_coin_system() {
        let sys = tosses(3);
        let phi = recent_heads(&sys);
        assert!(prop10_holds(&sys, AgentId(0), &phi).unwrap());
        // For the clocked agent too (its post spaces are single slices).
        assert!(prop10_holds(&sys, AgentId(1), &phi).unwrap());
    }

    #[test]
    fn section7_quantities() {
        // The paper's n-toss numbers, scaled to n = 3: the clockless
        // agent's interval is [1/2³, 1 − 1/2³]; against the clocked
        // opponent every horizontal cut gives exactly 1/2.
        let sys = tosses(3);
        let phi = recent_heads(&sys);
        let c = pt(0, 1);
        let p1 = AgentId(0);
        assert_eq!(
            pts_interval(&sys, p1, c, &phi).unwrap(),
            (rat!(1 / 8), rat!(7 / 8))
        );
        let vs_clocked = class_interval(&sys, p1, AgentId(1), c, &phi, &CutClass::Horizontal);
        assert_eq!(vs_clocked.unwrap(), (rat!(1 / 2), rat!(1 / 2)));
        // Regions: against itself, everything after "go"; against the
        // clocked p2, a single time slice.
        assert_eq!(region_for(&sys, p1, p1, c).len(), 8 * 3);
        assert_eq!(region_for(&sys, p1, AgentId(1), c).len(), 8);
    }
}
