//! Cuts: the choices of a type-3 adversary.
//!
//! Section 7 of the paper: in an asynchronous system an agent may not
//! know *when* the fact it is betting on is being tested. The third
//! type of adversary resolves this by choosing, for every run through
//! the agent's sample region, the point at which the bet takes place —
//! a **cut** through the region. (The generalized adversary discussed at
//! the end of Section 7 may also *skip* runs, giving the agent no chance
//! to bet there; such partial cuts are permitted by [`Cut`] and used by
//! the `Partial` cut class.)

use crate::error::AsyncError;
use kpa_assign::DensePointSpace;
use kpa_logic::PointSet;
use kpa_measure::{BlockSpace, Rat};
use kpa_system::{PointId, RunId, System};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A cut: at most one point per run. A *full* cut of a region touches
/// every run through the region.
///
/// # Examples
///
/// ```
/// use kpa_system::{PointId, TreeId};
/// use kpa_asynchrony::Cut;
///
/// let pts = [
///     PointId { tree: TreeId(0), run: 0, time: 2 },
///     PointId { tree: TreeId(0), run: 1, time: 5 },
/// ];
/// let cut = Cut::new(pts)?;
/// assert_eq!(cut.len(), 2);
/// # Ok::<(), kpa_asynchrony::AsyncError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    points: BTreeMap<RunId, PointId>,
}

impl Cut {
    /// Builds a cut from points.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncError::DuplicateRunPoint`] if two points lie on
    /// the same run, or [`AsyncError::EmptyCut`] if no points are given.
    pub fn new(points: impl IntoIterator<Item = PointId>) -> Result<Cut, AsyncError> {
        let mut map = BTreeMap::new();
        for p in points {
            if map.insert(p.run_id(), p).is_some() {
                return Err(AsyncError::DuplicateRunPoint);
            }
        }
        if map.is_empty() {
            return Err(AsyncError::EmptyCut);
        }
        Ok(Cut { points: map })
    }

    /// The number of runs the cut touches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the cut is empty (never true for a constructed cut).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cut's points, in run order.
    pub fn points(&self) -> impl Iterator<Item = PointId> + '_ {
        self.points.values().copied()
    }

    /// The point chosen on a run, if any.
    #[must_use]
    pub fn point_on(&self, run: RunId) -> Option<PointId> {
        self.points.get(&run).copied()
    }

    /// Whether the cut touches every run through `region`.
    #[must_use]
    pub fn is_full_for(&self, region: &PointSet) -> bool {
        region.iter().all(|p| self.points.contains_key(&p.run_id()))
    }

    /// The probability space the cut induces: its points, weighted by
    /// their runs' probabilities (normalized over the touched runs).
    /// Because a cut has one point per run, *every* subset is
    /// measurable — this is how a type-3 adversary dissolves the
    /// nonmeasurability of asynchronous facts.
    ///
    /// The space is returned with its dense word-mask kernel attached
    /// (see [`DensePointSpace`]), so measuring [`PointSet`] facts runs
    /// on the fused word-wise path; it derefs to the generic
    /// [`PointSpace`](kpa_assign::PointSpace) for everything else.
    ///
    /// # Errors
    ///
    /// Propagates space-construction failures.
    pub fn space(&self, sys: &System) -> Result<DensePointSpace, AsyncError> {
        let space = BlockSpace::new(self.points().map(|p| (p, p.run_id())), |run| {
            sys.run_prob(*run)
        })?;
        Ok(DensePointSpace::new(space, Arc::clone(sys.point_index())))
    }

    /// The probability of the fact `phi` under this cut.
    ///
    /// # Errors
    ///
    /// Propagates space-construction failures.
    pub fn prob(&self, sys: &System, phi: &PointSet) -> Result<Rat, AsyncError> {
        Ok(self
            .space(sys)?
            .measure(phi)
            .expect("cut sets are always measurable"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpa_measure::rat;
    use kpa_system::{ProtocolBuilder, TreeId};

    fn pt(run: usize, time: usize) -> PointId {
        PointId {
            tree: TreeId(0),
            run,
            time,
        }
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(Cut::new([]), Err(AsyncError::EmptyCut)));
        assert!(matches!(
            Cut::new([pt(0, 1), pt(0, 2)]),
            Err(AsyncError::DuplicateRunPoint)
        ));
        let cut = Cut::new([pt(0, 1), pt(1, 2)]).unwrap();
        assert_eq!(cut.len(), 2);
        assert!(!cut.is_empty());
        assert_eq!(
            cut.point_on(RunId {
                tree: TreeId(0),
                index: 0
            }),
            Some(pt(0, 1))
        );
        assert_eq!(
            cut.point_on(RunId {
                tree: TreeId(0),
                index: 7
            }),
            None
        );
    }

    #[test]
    fn cut_probabilities_are_always_measurable() {
        // Two fair tosses; "most recent toss heads" is nonmeasurable for
        // a clockless observer, but any cut makes it measurable.
        let sys = ProtocolBuilder::new(["p"])
            .clockless("p")
            .coin("c1", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &[])
            .coin("c2", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &[])
            .build()
            .unwrap();
        let mut recent = sys.points_satisfying(sys.prop_id("recent:c1=h").unwrap());
        recent.extend(sys.points_satisfying(sys.prop_id("recent:c2=h").unwrap()));

        // The horizontal time-1 cut: probability of heads = 1/2.
        let t1 = Cut::new((0..4).map(|r| pt(r, 1))).unwrap();
        assert_eq!(t1.prob(&sys, &recent).unwrap(), rat!(1 / 2));
        // The adversarial cut picking tails points wherever possible:
        // only the hh run contributes. (Runs in branch order: hh ht th tt;
        // pick time 2 on ht (recent=t), time 1 on th (recent=t).)
        let bad = Cut::new([pt(0, 1), pt(1, 2), pt(2, 1), pt(3, 1)]).unwrap();
        assert_eq!(bad.prob(&sys, &recent).unwrap(), rat!(1 / 4));
        // The favourable cut: heads wherever possible.
        let good = Cut::new([pt(0, 1), pt(1, 1), pt(2, 2), pt(3, 1)]).unwrap();
        assert_eq!(good.prob(&sys, &recent).unwrap(), rat!(3 / 4));
    }

    #[test]
    fn fullness_and_iteration() {
        let idx = std::sync::Arc::new(kpa_system::PointIndex::new(vec![2], 2));
        let region = PointSet::from_points(idx, [pt(0, 1), pt(0, 2), pt(1, 1)]);
        let full = Cut::new([pt(0, 2), pt(1, 1)]).unwrap();
        assert!(full.is_full_for(&region));
        let partial = Cut::new([pt(0, 1)]).unwrap();
        assert!(!partial.is_full_for(&region));
        assert_eq!(full.points().count(), 2);
    }
}
