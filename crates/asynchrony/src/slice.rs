//! The time-slice assignment `S²` of Section 7.
//!
//! When the clockless agent `p1` reasons "whatever the current time `k`
//! is, the probability that the `k`-th toss landed heads is 1/2", it is
//! implicitly using the assignment that associates with `(r, k)` the
//! *time-`k`* points of the tree that it considers possible — which the
//! paper notes "is precisely the assignment `S²`" (the one induced by
//! betting against a clock-bearing opponent). Equivalently, it is the
//! assignment whose type-3 adversary is restricted to horizontal cuts.

use kpa_assign::Assignment;

/// The assignment mapping `(i, c)` to `Tree_ic ∩ {points at c's time}`.
///
/// In a synchronous system this coincides with `S^post`; in an
/// asynchronous one it is a strict refinement under which per-time
/// facts like "the most recent toss landed heads" become measurable.
///
/// # Examples
///
/// A clockless observer of two fair tosses: under `S^post` the fact
/// "the most recent toss landed heads" is nonmeasurable, but under the
/// slice assignment it is measurable with probability exactly 1/2 —
/// the paper's "other line of reasoning".
///
/// ```
/// use kpa_measure::rat;
/// use kpa_system::{AgentId, PointId, ProtocolBuilder, TreeId};
/// use kpa_assign::ProbAssignment;
/// use kpa_asynchrony::slice_assignment;
///
/// let sys = ProtocolBuilder::new(["p1", "p2"])
///     .clockless("p1")
///     .coin("c1", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &[])
///     .coin("c2", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &[])
///     .build()?;
/// let slice = ProbAssignment::new(&sys, slice_assignment());
/// let recent = sys.points_satisfying(sys.prop_id("recent:c2=h").unwrap());
/// let c = PointId { tree: TreeId(0), run: 0, time: 2 };
/// assert_eq!(slice.prob(AgentId(0), c, &recent)?, rat!(1 / 2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn slice_assignment() -> Assignment {
    Assignment::custom("slice", |sys, agent, c| {
        sys.indistinguishable(agent, c)
            .intersection(&sys.time_slice(c.tree, c.time))
            .iter()
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpa_assign::{lattice, ProbAssignment};
    use kpa_measure::rat;
    use kpa_system::{AgentId, PointId, ProtocolBuilder, TreeId};

    fn tosses(n: usize) -> kpa_system::System {
        let mut b = ProtocolBuilder::new(["p1", "p2"]).clockless("p1");
        for k in 0..n {
            let name = format!("c{k}");
            b = b.step(&name.clone(), move |_| {
                ["h", "t"]
                    .map(|o| {
                        let br = kpa_system::Branch::new(rat!(1 / 2))
                            .transient_prop(&format!("recent={o}"));
                        if k == 0 {
                            br.observe("p1", "go")
                        } else {
                            br
                        }
                    })
                    .to_vec()
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn slice_makes_recent_heads_measurable_at_one_half() {
        let sys = tosses(4);
        let recent = sys.points_satisfying(sys.prop_id("recent=h").unwrap());
        let slice = ProbAssignment::new(&sys, slice_assignment());
        let p1 = AgentId(0);
        for time in 1..=4 {
            let c = PointId {
                tree: TreeId(0),
                run: 0,
                time,
            };
            assert_eq!(
                slice.prob(p1, c, &recent).unwrap(),
                rat!(1 / 2),
                "time {time}"
            );
        }
    }

    #[test]
    fn slice_refines_post() {
        let sys = tosses(3);
        let slice = ProbAssignment::new(&sys, slice_assignment());
        let post = ProbAssignment::new(&sys, kpa_assign::Assignment::post());
        assert!(lattice::leq(&slice, &post));
        assert!(slice.satisfies_req1() && slice.satisfies_req2());
        assert!(slice.is_consistent());
        assert!(slice.is_state_generated());
        assert!(slice.is_inclusive());
        // In this asynchronous system the slice samples partition the
        // post samples (Proposition 4 applies).
        assert!(lattice::refines_by_partition(&slice, &post));
    }

    #[test]
    fn slice_equals_post_in_synchronous_systems() {
        let sys = ProtocolBuilder::new(["a", "b"])
            .coin("c", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &["a"])
            .build()
            .unwrap();
        assert!(sys.is_synchronous());
        let slice = ProbAssignment::new(&sys, slice_assignment());
        let post = ProbAssignment::new(&sys, kpa_assign::Assignment::post());
        assert!(lattice::leq(&slice, &post) && lattice::leq(&post, &slice));
    }
}
