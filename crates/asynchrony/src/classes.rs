//! Classes of type-3 adversaries and their probability bounds.
//!
//! Section 7 of the paper considers several spaces of cuts an adversary
//! may choose from:
//!
//! * [`CutClass::AllPoints`] — completely arbitrary cuts (the class
//!   `pts`; Proposition 10 shows quantifying over it recovers exactly
//!   the inner/outer measures of `P^post`);
//! * [`CutClass::StateCuts`] — cuts through *global states* (antichains
//!   of nodes), the Fischer–Zuck restriction (`state`), which can give
//!   different — and arguably less reasonable — answers;
//! * [`CutClass::Horizontal`] — one time slice for the whole region
//!   (what a clock-bearing opponent forces; recovers synchrony);
//! * [`CutClass::Window`] — partial synchrony: all chosen times fall in
//!   some window of a given width `ε`;
//! * [`CutClass::Partial`] — the generalized adversary mentioned at the
//!   end of Section 7, which may skip runs entirely.
//!
//! For every class, [`CutClass::bounds`] computes the infimum and
//! supremum of the cut-conditioned probability of a fact. The bounds
//! use the extremal constructions from the proof of Proposition 10
//! (per-run greedy choices), and [`CutClass::enumerate_cuts`] provides
//! exact enumeration for cross-checking on small regions.

use crate::cut::Cut;
use crate::error::AsyncError;
use kpa_assign::DensePointSpace;
use kpa_logic::PointSet;
use kpa_measure::{BlockSpace, Rat};
use kpa_pool::Pool;
use kpa_system::{NodeId, PointId, RunId, System};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Minimum window starts per chunk for the partial-synchrony sweep.
const START_MIN_CHUNK: usize = 2;

/// A class of type-3 adversaries (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutClass {
    /// Arbitrary cuts: one freely chosen point per run (`pts`).
    AllPoints,
    /// Cuts through global states: antichains of nodes (`state`).
    /// Enumeration is exponential in the number of distinct global
    /// states in the region; `limit` bounds it.
    StateCuts {
        /// Maximum number of distinct global states to enumerate over.
        limit: usize,
    },
    /// Horizontal cuts: a single time for the whole region.
    Horizontal,
    /// Partial synchrony: all chosen times lie in a window of width
    /// `width` (0 = [`CutClass::Horizontal`]).
    Window(usize),
    /// The generalized adversary that may skip runs (at-most-one point
    /// per run, nonempty).
    Partial,
}

/// Groups region points by run, in run order (the dense bitset iterates
/// in ascending point order, so each per-run list is time-sorted).
fn by_run(region: &PointSet) -> BTreeMap<RunId, Vec<PointId>> {
    let mut map: BTreeMap<RunId, Vec<PointId>> = BTreeMap::new();
    for p in region {
        map.entry(p.run_id()).or_default().push(p);
    }
    map
}

fn total_weight(sys: &System, runs: &BTreeMap<RunId, Vec<PointId>>) -> Rat {
    runs.keys().map(|&r| sys.run_prob(r)).sum()
}

/// The run-blocked probability space of a region (blocks = runs,
/// weighted by run probability), with the dense word-mask kernel
/// attached so interval queries take the fused single-pass path.
fn region_space(sys: &System, region: &PointSet) -> Result<DensePointSpace, AsyncError> {
    let space = BlockSpace::new(region.iter().map(|p| (p, p.run_id())), |run| {
        sys.run_prob(*run)
    })?;
    Ok(DensePointSpace::new(space, Arc::clone(sys.point_index())))
}

impl CutClass {
    /// The default state-cut class with a 20-state enumeration limit.
    #[must_use]
    pub fn state() -> CutClass {
        CutClass::StateCuts { limit: 20 }
    }

    /// The `(inf, sup)` of the probability of `phi` over all cuts of
    /// `region` in this class.
    ///
    /// `region` is the sample the type-2 opponent leaves the agent —
    /// typically `Tree^j_ic` — and must lie within one computation tree.
    ///
    /// # Errors
    ///
    /// [`AsyncError::EmptyCut`] for an empty region,
    /// [`AsyncError::NoValidCut`] if the class admits no cut of the
    /// region (e.g. no single time slices it), and
    /// [`AsyncError::TooLarge`] if a required enumeration exceeds its
    /// limit.
    ///
    /// # Panics
    ///
    /// Panics if `region` spans more than one computation tree (callers
    /// obtain regions from REQ1-satisfying assignments).
    pub fn bounds(
        &self,
        sys: &System,
        region: &PointSet,
        phi: &PointSet,
    ) -> Result<(Rat, Rat), AsyncError> {
        kpa_trace::count!("async.cut_bounds");
        let Some(first) = region.first() else {
            return Err(AsyncError::EmptyCut);
        };
        assert!(
            region.is_subset(sys.tree_set(first.tree)),
            "cut region must lie within one computation tree"
        );
        let runs = by_run(region);
        let total = total_weight(sys, &runs);
        match self {
            CutClass::AllPoints => {
                // The Proposition 10 construction — per run, pick the
                // worst (resp. best) stopping point — is exactly the
                // inner/outer interval of the region's run-blocked
                // probability space: a run contributes to the infimum
                // iff *all* its region points satisfy `phi` and to the
                // supremum iff *any* does. Reuse the fused single-pass
                // `measure_interval` on the dense word-mask kernel
                // instead of re-deriving the greedy sweep here.
                let space = region_space(sys, region)?;
                Ok(space.measure_interval(phi))
            }
            CutClass::Horizontal => CutClass::Window(0).bounds(sys, region, phi),
            CutClass::Window(width) => {
                let horizon = sys.horizon();
                // Each window start is an independent candidate cut
                // family; sweep starts in parallel and fold the
                // (exact) min/max envelope in start order.
                let window_at = |start: usize| -> Option<(Rat, Rat)> {
                    let end = start.saturating_add(*width).min(horizon);
                    // The window admits a full cut iff every run has an
                    // in-window region point.
                    let mut lo = Rat::ZERO;
                    let mut hi = Rat::ZERO;
                    for (&r, pts) in &runs {
                        let in_window: Vec<PointId> = pts
                            .iter()
                            .copied()
                            .filter(|p| p.time >= start && p.time <= end)
                            .collect();
                        if in_window.is_empty() {
                            return None;
                        }
                        let w = sys.run_prob(r);
                        if in_window.iter().all(|p| phi.contains(p)) {
                            lo += w;
                        }
                        if in_window.iter().any(|p| phi.contains(p)) {
                            hi += w;
                        }
                    }
                    Some((lo / total, hi / total))
                };
                let partials =
                    Pool::current().par_map_chunks(horizon + 1, START_MIN_CHUNK, |range| {
                        let mut best: Option<(Rat, Rat)> = None;
                        for start in range {
                            if let Some((lo, hi)) = window_at(start) {
                                best = Some(match best {
                                    None => (lo, hi),
                                    Some((l, h)) => (l.min(lo), h.max(hi)),
                                });
                            }
                        }
                        best
                    });
                let mut best: Option<(Rat, Rat)> = None;
                for partial in partials.into_iter().flatten() {
                    let (lo, hi) = partial;
                    best = Some(match best {
                        None => (lo, hi),
                        Some((l, h)) => (l.min(lo), h.max(hi)),
                    });
                }
                best.ok_or(AsyncError::NoValidCut)
            }
            CutClass::Partial => {
                // The adversary may restrict to any single run and point.
                let any_false = region.iter().any(|p| !phi.contains(p));
                let any_true = region.iter().any(|p| phi.contains(p));
                Ok((
                    if any_false { Rat::ZERO } else { Rat::ONE },
                    if any_true { Rat::ONE } else { Rat::ZERO },
                ))
            }
            CutClass::StateCuts { limit } => {
                let mut lo: Option<Rat> = None;
                let mut hi: Option<Rat> = None;
                for cut in self.state_cuts(sys, region, *limit)? {
                    let p = cut.prob(sys, phi)?;
                    lo = Some(lo.map_or(p, |l| l.min(p)));
                    hi = Some(hi.map_or(p, |h| h.max(p)));
                }
                match (lo, hi) {
                    (Some(l), Some(h)) => Ok((l, h)),
                    _ => Err(AsyncError::NoValidCut),
                }
            }
        }
    }

    /// [`CutClass::bounds`] with the region's run-blocked probability
    /// space already in hand — the entry point for plan-driven sweeps,
    /// where a precomputed `point → Arc<DensePointSpace>` table (a
    /// [`kpa_assign::SamplePlan`]) supplies the space and the sample
    /// extraction + space construction of the naive path disappears.
    ///
    /// **Precondition:** `space` must be the run-blocked space of its
    /// own sample (blocks = runs weighted by run probability), exactly
    /// as built by `ProbAssignment::space` — which is the same
    /// construction [`CutClass::bounds`] performs internally, so for
    /// [`CutClass::AllPoints`] the result is bit-identical by
    /// construction. The other classes need the region itself (their
    /// optimizations are not functions of the run-blocked space alone),
    /// so they rebuild it from the space's elements and delegate.
    ///
    /// # Errors
    ///
    /// As [`CutClass::bounds`].
    pub fn bounds_via(
        &self,
        sys: &System,
        space: &DensePointSpace,
        phi: &PointSet,
    ) -> Result<(Rat, Rat), AsyncError> {
        match self {
            CutClass::AllPoints => {
                kpa_trace::count!("async.cut_bounds_via");
                if space.elements().is_empty() {
                    return Err(AsyncError::EmptyCut);
                }
                // Proposition 10's per-run greedy optimum *is* the
                // inner/outer interval of the run-blocked space — one
                // fused dense pass, no region rebuild.
                Ok(space.measure_interval(phi))
            }
            _ => {
                let region = sys.point_set(space.elements().iter().copied());
                self.bounds(sys, &region, phi)
            }
        }
    }

    /// Exact enumeration of the cuts in this class over `region`, for
    /// cross-checking the closed-form bounds on small regions.
    ///
    /// # Errors
    ///
    /// [`AsyncError::TooLarge`] when the enumeration would exceed
    /// `limit` cuts (or, for state cuts, `limit` states);
    /// [`AsyncError::EmptyCut`] / [`AsyncError::NoValidCut`] as for
    /// [`CutClass::bounds`].
    ///
    /// # Panics
    ///
    /// As for [`CutClass::bounds`].
    pub fn enumerate_cuts(
        &self,
        sys: &System,
        region: &PointSet,
        limit: usize,
    ) -> Result<Vec<Cut>, AsyncError> {
        let Some(first) = region.first() else {
            return Err(AsyncError::EmptyCut);
        };
        assert!(
            region.is_subset(sys.tree_set(first.tree)),
            "cut region must lie within one computation tree"
        );
        let runs = by_run(region);
        match self {
            CutClass::AllPoints => {
                let mut cuts: Vec<Vec<PointId>> = vec![Vec::new()];
                for pts in runs.values() {
                    let mut next = Vec::new();
                    for partial in &cuts {
                        for &p in pts {
                            let mut c = partial.clone();
                            c.push(p);
                            next.push(c);
                        }
                    }
                    if next.len() > limit {
                        return Err(AsyncError::TooLarge {
                            nodes: next.len(),
                            limit,
                        });
                    }
                    cuts = next;
                }
                cuts.into_iter().map(Cut::new).collect()
            }
            CutClass::Horizontal => CutClass::Window(0).enumerate_cuts(sys, region, limit),
            CutClass::Window(width) => {
                let horizon = sys.horizon();
                let mut out = Vec::new();
                let mut seen = BTreeSet::new();
                for start in 0..=horizon {
                    let end = start.saturating_add(*width).min(horizon);
                    let mut windowed = region.clone();
                    windowed.retain(|p| p.time >= start && p.time <= end);
                    let covered: BTreeSet<RunId> = windowed.iter().map(|p| p.run_id()).collect();
                    if covered.len() != runs.len() {
                        continue;
                    }
                    for cut in CutClass::AllPoints.enumerate_cuts(sys, &windowed, limit)? {
                        let key: Vec<PointId> = cut.points().collect();
                        if seen.insert(key) {
                            out.push(cut);
                        }
                    }
                    if out.len() > limit {
                        return Err(AsyncError::TooLarge {
                            nodes: out.len(),
                            limit,
                        });
                    }
                }
                if out.is_empty() {
                    return Err(AsyncError::NoValidCut);
                }
                Ok(out)
            }
            CutClass::Partial => {
                // All nonempty sub-cuts of all full cuts: enumerate
                // per-run options of "skip or pick one point".
                let mut cuts: Vec<Vec<PointId>> = vec![Vec::new()];
                for pts in runs.values() {
                    let mut next = Vec::new();
                    for partial in &cuts {
                        next.push(partial.clone()); // skip this run
                        for &p in pts {
                            let mut c = partial.clone();
                            c.push(p);
                            next.push(c);
                        }
                    }
                    if next.len() > limit {
                        return Err(AsyncError::TooLarge {
                            nodes: next.len(),
                            limit,
                        });
                    }
                    cuts = next;
                }
                cuts.into_iter()
                    .filter(|c| !c.is_empty())
                    .map(Cut::new)
                    .collect()
            }
            CutClass::StateCuts { .. } => self.state_cuts(sys, region, limit),
        }
    }

    /// Enumerates the state cuts (antichain-induced cuts) of a region.
    fn state_cuts(
        &self,
        sys: &System,
        region: &PointSet,
        limit: usize,
    ) -> Result<Vec<Cut>, AsyncError> {
        // Distinct global states (nodes) of the region, with their points.
        let mut node_points: BTreeMap<NodeId, Vec<PointId>> = BTreeMap::new();
        for p in region {
            node_points.entry(sys.node_id_of(p)).or_default().push(p);
        }
        let nodes: Vec<NodeId> = node_points.keys().copied().collect();
        if nodes.len() > limit {
            return Err(AsyncError::TooLarge {
                nodes: nodes.len(),
                limit,
            });
        }
        // Ancestor sets within the tree.
        let tree = sys.tree(region.first().expect("nonempty region").tree);
        let ancestors = |mut n: NodeId| -> BTreeSet<NodeId> {
            let mut out = BTreeSet::new();
            while let Some(parent) = tree.node(n).parent() {
                out.insert(parent);
                n = parent;
            }
            out
        };
        let anc: BTreeMap<NodeId, BTreeSet<NodeId>> =
            nodes.iter().map(|&n| (n, ancestors(n))).collect();
        let comparable =
            |a: NodeId, b: NodeId| a == b || anc[&a].contains(&b) || anc[&b].contains(&a);

        // Enumerate nonempty antichains by include/exclude DFS.
        let mut out = Vec::new();
        let mut chosen: Vec<NodeId> = Vec::new();
        fn dfs(
            idx: usize,
            nodes: &[NodeId],
            chosen: &mut Vec<NodeId>,
            comparable: &impl Fn(NodeId, NodeId) -> bool,
            node_points: &BTreeMap<NodeId, Vec<PointId>>,
            out: &mut Vec<Cut>,
        ) {
            if idx == nodes.len() {
                if !chosen.is_empty() {
                    let pts: Vec<PointId> = chosen
                        .iter()
                        .flat_map(|n| node_points[n].iter().copied())
                        .collect();
                    out.push(Cut::new(pts).expect("antichain nodes are run-disjoint"));
                }
                return;
            }
            // Exclude nodes[idx].
            dfs(idx + 1, nodes, chosen, comparable, node_points, out);
            // Include it if compatible.
            if chosen.iter().all(|&c| !comparable(c, nodes[idx])) {
                chosen.push(nodes[idx]);
                dfs(idx + 1, nodes, chosen, comparable, node_points, out);
                chosen.pop();
            }
        }
        dfs(0, &nodes, &mut chosen, &comparable, &node_points, &mut out);
        if out.is_empty() {
            return Err(AsyncError::NoValidCut);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpa_assign::Assignment;
    use kpa_measure::rat;
    use kpa_system::{AgentId, ProtocolBuilder, TreeId};

    fn pt(run: usize, time: usize) -> PointId {
        PointId {
            tree: TreeId(0),
            run,
            time,
        }
    }

    /// Clockless p1, two fair tosses; "most recent toss landed heads".
    fn two_toss() -> (kpa_system::System, PointSet, PointSet) {
        let sys = ProtocolBuilder::new(["p1", "p2"])
            .clockless("p1")
            .step("c1", |_| {
                ["h", "t"]
                    .map(|o| {
                        kpa_system::Branch::new(rat!(1 / 2))
                            .observe("p1", "go")
                            .prop(&format!("c1={o}"))
                            .transient_prop(&format!("recent:c1={o}"))
                    })
                    .to_vec()
            })
            .coin("c2", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &[])
            .build()
            .unwrap();
        let region = Assignment::post().sample(&sys, AgentId(0), pt(0, 1));
        let mut phi = sys.points_satisfying(sys.prop_id("recent:c1=h").unwrap());
        phi.extend(sys.points_satisfying(sys.prop_id("recent:c2=h").unwrap()));
        (sys, region, phi)
    }

    #[test]
    fn all_points_bounds_match_inner_outer() {
        let (sys, region, phi) = two_toss();
        assert_eq!(region.len(), 8);
        let (lo, hi) = CutClass::AllPoints.bounds(&sys, &region, &phi).unwrap();
        assert_eq!((lo, hi), (rat!(1 / 4), rat!(3 / 4)));
    }

    #[test]
    fn all_points_bounds_match_enumeration() {
        let (sys, region, phi) = two_toss();
        let cuts = CutClass::AllPoints
            .enumerate_cuts(&sys, &region, 1 << 12)
            .unwrap();
        assert_eq!(cuts.len(), 16); // 2 choices per run, 4 runs
        let probs: Vec<Rat> = cuts.iter().map(|c| c.prob(&sys, &phi).unwrap()).collect();
        let lo = probs.iter().copied().fold(Rat::ONE, Rat::min);
        let hi = probs.iter().copied().fold(Rat::ZERO, Rat::max);
        assert_eq!(
            (lo, hi),
            CutClass::AllPoints.bounds(&sys, &region, &phi).unwrap()
        );
    }

    #[test]
    fn horizontal_cuts_recover_one_half() {
        let (sys, region, phi) = two_toss();
        let (lo, hi) = CutClass::Horizontal.bounds(&sys, &region, &phi).unwrap();
        // At each fixed time the most recent toss is fair.
        assert_eq!((lo, hi), (rat!(1 / 2), rat!(1 / 2)));
        let cuts = CutClass::Horizontal
            .enumerate_cuts(&sys, &region, 100)
            .unwrap();
        assert_eq!(cuts.len(), 2); // times 1 and 2
    }

    #[test]
    fn window_interpolates_between_horizontal_and_all_points() {
        let (sys, region, phi) = two_toss();
        let h = CutClass::Horizontal.bounds(&sys, &region, &phi).unwrap();
        let w1 = CutClass::Window(1).bounds(&sys, &region, &phi).unwrap();
        let all = CutClass::AllPoints.bounds(&sys, &region, &phi).unwrap();
        assert!(w1.0 <= h.0 && h.1 <= w1.1, "wider window, wider bounds");
        assert!(all.0 <= w1.0 && w1.1 <= all.1);
        // Window(horizon) admits every cut: equals AllPoints here.
        let wmax = CutClass::Window(2).bounds(&sys, &region, &phi).unwrap();
        assert_eq!(wmax, all);
    }

    #[test]
    fn partial_adversary_is_strictly_worse() {
        let (sys, region, phi) = two_toss();
        let (lo, hi) = CutClass::Partial.bounds(&sys, &region, &phi).unwrap();
        assert_eq!((lo, hi), (Rat::ZERO, Rat::ONE));
        // Enumeration on a trimmed region confirms the extremes.
        let mut small = region.clone();
        small.retain(|p| p.run < 2);
        let cuts = CutClass::Partial
            .enumerate_cuts(&sys, &small, 1 << 10)
            .unwrap();
        let probs: Vec<Rat> = cuts.iter().map(|c| c.prob(&sys, &phi).unwrap()).collect();
        assert!(probs.contains(&Rat::ZERO));
        assert!(probs.contains(&Rat::ONE));
    }

    #[test]
    fn state_cuts_on_the_biased_example() {
        // The end-of-Section-7 example: a 0.99-biased coin, two runs.
        // p2 distinguishes only (h,1); φ = "the coin lands heads".
        let sys = ProtocolBuilder::new(["p1", "p2"])
            .clockless("p1")
            .clockless("p2")
            .step("coin", |_| {
                vec![
                    kpa_system::Branch::new(rat!(99 / 100))
                        .observe("p2", "saw-h")
                        .prop("heads"),
                    kpa_system::Branch::new(rat!(1 / 100)),
                ]
            })
            .build()
            .unwrap();
        // φ is a fact about the run here: true at both points of run h.
        let mut phi = sys.points_satisfying(sys.prop_id("heads").unwrap());
        phi.insert(pt(0, 0)); // time-0 point of the heads run
                              // p2's knowledge at (t,0): everything except (h,1).
        let region = Assignment::post().sample(&sys, AgentId(1), pt(1, 0));
        assert_eq!(region.len(), 3);

        // pts-cuts: both cuts give probability .99 (Prop 10 flavor).
        let (lo, hi) = CutClass::AllPoints.bounds(&sys, &region, &phi).unwrap();
        assert_eq!((lo, hi), (rat!(99 / 100), rat!(99 / 100)));

        // state-cuts: choosing the T node yields probability 0.
        let (lo, hi) = CutClass::state().bounds(&sys, &region, &phi).unwrap();
        assert_eq!((lo, hi), (Rat::ZERO, rat!(99 / 100)));
    }

    #[test]
    fn error_paths() {
        let (sys, region, phi) = two_toss();
        assert!(matches!(
            CutClass::AllPoints.bounds(&sys, &sys.empty_points(), &phi),
            Err(AsyncError::EmptyCut)
        ));
        assert!(matches!(
            CutClass::AllPoints.enumerate_cuts(&sys, &region, 2),
            Err(AsyncError::TooLarge { .. })
        ));
        assert!(matches!(
            CutClass::StateCuts { limit: 3 }.bounds(&sys, &region, &phi),
            Err(AsyncError::TooLarge { .. })
        ));
        // A region with a gap no single time crosses.
        let gappy = sys.point_set([pt(0, 1), pt(1, 2)]);
        assert!(matches!(
            CutClass::Horizontal.bounds(&sys, &gappy, &phi),
            Err(AsyncError::NoValidCut)
        ));
    }
}
