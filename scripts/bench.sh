#!/usr/bin/env bash
# Regenerates BENCH_8.json + TRACE_10.json + BENCH_6.json +
# BENCH_7.json + BENCH_9.json: the kernel-bench rows (dense PointSet
# sat evaluator, pool parallel sweep, dense measure kernel, the
# compiled threshold family, and the batched sample plan) plus the
# traced pass's counter report, the shared-artifact bench rows
# (concurrent EvalCtx queries against one Arc<ModelArtifact>, sharded
# memo vs mutex), the kpa-serve soak rows (loopback TCP clients,
# batched wire queries, per-frame latency histogram), and the size
# ladder (10^4 -> 10^6 points: wide-vs-narrow set kernels and
# per-point throughput per rung) — then gates the fresh rows against
# the committed baselines via scripts/check_bench.py.
#
#   ./scripts/bench.sh                 # best-of-3 reps, writes all five JSON files
#   BENCH=1 ./scripts/bench.sh         # longer sweeps (--features bench)
#   KPA_BENCH8_JSON=out.json ./scripts/bench.sh  # custom kernel bench output path
#   KPA_BENCH6_JSON=out6.json ./scripts/bench.sh # custom shared bench output path
#   KPA_BENCH7_JSON=out7.json ./scripts/bench.sh # custom serve soak output path
#   KPA_BENCH9_JSON=out9.json ./scripts/bench.sh # custom scale ladder output path
#   KPA_TRACE_JSON=trace.json ./scripts/bench.sh # custom trace output path
#   KPA_BENCH_CHECK=0 ./scripts/bench.sh         # skip the regression gates
#   KPA_LADDER_1E7=1 ./scripts/bench.sh          # include the 10^7 ladder rung
#
# When KPA_BENCH8_JSON points somewhere other than the committed
# BENCH_8.json (as CI does), the baseline stays untouched and the gate
# compares fresh-vs-committed speedup ratios.  When the output *is* the
# baseline (the default, i.e. you are re-baselining), the comparison
# would be a no-op, so the gate is skipped.  (BENCH_5.json is the
# pre-compiler kernel baseline, kept for history like BENCH_3/4 but no
# longer regenerated — the PR 8 formula compiler replaced its
# pr_ge_family rows.)  The trace gate follows the same rule with
# TRACE_10.json: it schema-checks the fresh report (v2: counters +
# rolling windows + span sites) and asserts the sample-plan hit rate
# didn't collapse vs the baseline.  (TRACE_5.json is the schema-v1
# counter-only baseline, kept for history but no longer regenerated.)  BENCH_6.json
# and BENCH_7.json follow the same rule again with KPA_BENCH6_JSON /
# KPA_BENCH7_JSON.
#
# The workspace is dependency-free, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline8="$(pwd)/BENCH_8.json"
trace_baseline="$(pwd)/TRACE_10.json"
baseline6="$(pwd)/BENCH_6.json"
baseline7="$(pwd)/BENCH_7.json"
baseline9="$(pwd)/BENCH_9.json"
out8="${KPA_BENCH8_JSON:-BENCH_8.json}"
trace_out="${KPA_TRACE_JSON:-TRACE_10.json}"
out6="${KPA_BENCH6_JSON:-BENCH_6.json}"
out7="${KPA_BENCH7_JSON:-BENCH_7.json}"
out9="${KPA_BENCH9_JSON:-BENCH_9.json}"
# cargo runs the bench binary from the package directory, so anchor
# relative paths to the repo root.
case "${out8}" in /*) ;; *) out8="$(pwd)/${out8}" ;; esac
case "${trace_out}" in /*) ;; *) trace_out="$(pwd)/${trace_out}" ;; esac
case "${out6}" in /*) ;; *) out6="$(pwd)/${out6}" ;; esac
case "${out7}" in /*) ;; *) out7="$(pwd)/${out7}" ;; esac
case "${out9}" in /*) ;; *) out9="$(pwd)/${out9}" ;; esac
features=()
if [[ "${BENCH:-0}" == "1" ]]; then
    features=(--features bench)
fi

echo "==> cargo bench -p kpa-bench --bench kernel --offline (JSON -> ${out8}, trace -> ${trace_out})"
KPA_BENCH_JSON="${out8}" KPA_TRACE_JSON="${trace_out}" \
    cargo bench -q -p kpa-bench --bench kernel --offline "${features[@]}"

echo "bench rows written to ${out8}"
echo "trace report written to ${trace_out}"

echo "==> cargo bench -p kpa-bench --bench shared --offline (JSON -> ${out6})"
KPA_BENCH_JSON="${out6}" \
    cargo bench -q -p kpa-bench --bench shared --offline "${features[@]}"

echo "shared bench rows written to ${out6}"

echo "==> cargo bench -p kpa-bench --bench soak --offline (JSON -> ${out7})"
KPA_BENCH_JSON="${out7}" \
    cargo bench -q -p kpa-bench --bench soak --offline "${features[@]}"

echo "serve soak rows written to ${out7}"

echo "==> cargo bench -p kpa-bench --bench ladder --offline (JSON -> ${out9})"
KPA_BENCH_JSON="${out9}" \
    cargo bench -q -p kpa-bench --bench ladder --offline "${features[@]}"

echo "scale ladder rows written to ${out9}"

if [[ "${KPA_BENCH_CHECK:-1}" != "1" ]]; then
    echo "KPA_BENCH_CHECK=${KPA_BENCH_CHECK:-1}; skipping regression gates"
else
    if [[ "${out8}" == "${baseline8}" ]]; then
        echo "bench output is the committed baseline; skipping self-comparison"
    elif [[ -f "${baseline8}" ]]; then
        echo "==> python3 scripts/check_bench.py ${baseline8} ${out8}"
        python3 scripts/check_bench.py "${baseline8}" "${out8}"
    else
        echo "no committed baseline at ${baseline8}; skipping bench gate"
    fi
    if [[ "${trace_out}" == "${trace_baseline}" ]]; then
        echo "trace output is the committed baseline; skipping self-comparison"
    elif [[ -f "${trace_baseline}" ]]; then
        echo "==> python3 scripts/check_bench.py --trace ${trace_baseline} ${trace_out}"
        python3 scripts/check_bench.py --trace "${trace_baseline}" "${trace_out}"
    else
        echo "no committed trace baseline at ${trace_baseline}; skipping trace gate"
    fi
    if [[ "${out6}" == "${baseline6}" ]]; then
        echo "shared bench output is the committed baseline; skipping self-comparison"
    elif [[ -f "${baseline6}" ]]; then
        echo "==> python3 scripts/check_bench.py ${baseline6} ${out6}"
        python3 scripts/check_bench.py "${baseline6}" "${out6}"
    else
        echo "no committed baseline at ${baseline6}; skipping shared bench gate"
    fi
    if [[ "${out7}" == "${baseline7}" ]]; then
        echo "serve soak output is the committed baseline; skipping self-comparison"
    elif [[ -f "${baseline7}" ]]; then
        echo "==> python3 scripts/check_bench.py ${baseline7} ${out7}"
        python3 scripts/check_bench.py "${baseline7}" "${out7}"
    else
        echo "no committed baseline at ${baseline7}; skipping serve soak gate"
    fi
    if [[ "${out9}" == "${baseline9}" ]]; then
        echo "scale ladder output is the committed baseline; skipping self-comparison"
    elif [[ -f "${baseline9}" ]]; then
        echo "==> python3 scripts/check_bench.py ${baseline9} ${out9}"
        python3 scripts/check_bench.py "${baseline9}" "${out9}"
    else
        echo "no committed baseline at ${baseline9}; skipping scale ladder gate"
    fi
fi
