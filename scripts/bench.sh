#!/usr/bin/env bash
# Regenerates BENCH_4.json: the kernel-bench rows (dense PointSet sat
# evaluator, pool parallel sweep, dense measure kernel, Pr memo, and
# the batched sample plan) as machine-readable JSON, plus the
# human-readable rows on stdout — then gates the fresh rows against the
# committed baseline via scripts/check_bench.py.
#
#   ./scripts/bench.sh                 # best-of-3 reps, writes BENCH_4.json
#   BENCH=1 ./scripts/bench.sh         # longer sweeps (--features bench)
#   KPA_BENCH_JSON=out.json ./scripts/bench.sh   # custom output path
#   KPA_BENCH_CHECK=0 ./scripts/bench.sh         # skip the regression gate
#
# When KPA_BENCH_JSON points somewhere other than the committed
# BENCH_4.json (as CI does), the baseline stays untouched and the gate
# compares fresh-vs-committed speedup ratios.  When the output *is* the
# baseline (the default, i.e. you are re-baselining), the comparison
# would be a no-op, so the gate is skipped.
#
# The workspace is dependency-free, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline="$(pwd)/BENCH_4.json"
out="${KPA_BENCH_JSON:-BENCH_4.json}"
# cargo runs the bench binary from the package directory, so anchor
# relative paths to the repo root.
case "${out}" in /*) ;; *) out="$(pwd)/${out}" ;; esac
features=()
if [[ "${BENCH:-0}" == "1" ]]; then
    features=(--features bench)
fi

echo "==> cargo bench -p kpa-bench --bench kernel --offline (JSON -> ${out})"
KPA_BENCH_JSON="${out}" cargo bench -q -p kpa-bench --bench kernel --offline "${features[@]}"

echo "bench rows written to ${out}"

if [[ "${KPA_BENCH_CHECK:-1}" != "1" ]]; then
    echo "KPA_BENCH_CHECK=${KPA_BENCH_CHECK:-1}; skipping regression gate"
elif [[ "${out}" == "${baseline}" ]]; then
    echo "output is the committed baseline; skipping self-comparison"
elif [[ -f "${baseline}" ]]; then
    echo "==> python3 scripts/check_bench.py ${baseline} ${out}"
    python3 scripts/check_bench.py "${baseline}" "${out}"
else
    echo "no committed baseline at ${baseline}; skipping regression gate"
fi
