#!/usr/bin/env bash
# Regenerates BENCH_3.json: the kernel-bench rows (dense PointSet sat
# evaluator, pool parallel sweep, dense measure kernel, Pr memo) as
# machine-readable JSON, plus the human-readable rows on stdout.
#
#   ./scripts/bench.sh                 # best-of-3 reps, writes BENCH_3.json
#   BENCH=1 ./scripts/bench.sh         # longer sweeps (--features bench)
#   KPA_BENCH_JSON=out.json ./scripts/bench.sh   # custom output path
#
# The workspace is dependency-free, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${KPA_BENCH_JSON:-BENCH_3.json}"
# cargo runs the bench binary from the package directory, so anchor
# relative paths to the repo root.
case "${out}" in /*) ;; *) out="$(pwd)/${out}" ;; esac
features=()
if [[ "${BENCH:-0}" == "1" ]]; then
    features=(--features bench)
fi

echo "==> cargo bench -p kpa-bench --bench kernel --offline (JSON -> ${out})"
KPA_BENCH_JSON="${out}" cargo bench -q -p kpa-bench --bench kernel --offline "${features[@]}"

echo "bench rows written to ${out}"
