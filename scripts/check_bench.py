#!/usr/bin/env python3
"""Bench-regression gate for the bench JSON files (stdlib only).

Compares a freshly generated ``BENCH_N.json`` against the committed
baseline and fails (exit 1) when any asserted row regressed by more
than the tolerance.  Which keys are gated is chosen by the files' own
``bench`` field (``"kernel"`` for BENCH_8, ``"shared"`` for BENCH_6,
``"scale"`` for the BENCH_9 size ladder); the two files must agree on
it.

The two files are usually produced on *different machines* (the
committed baseline on a developer box, the fresh run on a CI runner),
so absolute row seconds are not comparable.  What *is* comparable is
each run's own ``speedups`` block: every speedup is a ratio of two rows
measured in the same process on the same host, so host speed divides
out.  The default mode therefore checks, per asserted speedup key:

  1. ``fresh >= baseline * (1 - TOLERANCE)``  -- the relative gate: a
     fresh ratio more than 30% below the committed one means the
     optimized path lost >30% throughput against its own reference
     path, i.e. a real regression rather than a slow runner.
  2. ``fresh >= floor(key)``                   -- the absolute floor the
     bench itself asserts (e.g. the dense measure kernel and the sample
     plan must each stay >= 2x their naive paths).

``par_sat_threads4_vs_1`` and ``shared_threads4_vs_1`` are deliberately
*not* asserted: they measure core-count scaling and legitimately sit
near 1x on single-core runners (the kernel bench skips its own assert
below 4 cores for the same reason).  ``shared_artifact_qps`` is an
absolute rate rather than a same-host ratio, so it is only required to
be present and positive.

With ``--same-host`` the gate additionally compares absolute row
seconds (fresh <= baseline * (1 + TOLERANCE) per row), for use when
both files verifiably come from the same machine.

With ``--trace`` the two files are kpa-trace reports (``TRACE_N.json``)
instead of bench rows.  The gate then:

  1. schema-checks the fresh report (``kpa_trace`` version 2, counters
     as string -> non-negative int, each histogram's ``count`` equal to
     its bucket mass, well-formed rows/events, and the v2 sections:
     ``windowed`` rolling summaries with ordered ``p50 <= p99`` and
     ``spans`` per-site aggregates -- both required present, and the
     fresh report's window must actually hold samples);
  2. requires the counters that prove the dense path was exercised
     (``measure.dense_query`` > 0, ``measure.kernel_built`` > 0,
     ``logic.plan_hit`` > 0) and zero ``assign.generic_measure``
     fallbacks on the dense row;
  3. computes the sample-plan hit rate
     ``plan_hit / (plan_hit + plan_fallback)`` on the planned bench row
     and asserts fresh >= baseline - HIT_RATE_SLACK.

Counter *counts* are host-independent (they are functions of the
workload, not the clock), so the trace gate is exact where the timing
gate must tolerate noise.

With ``--selftest`` the gate checks *itself* against synthetic inputs
-- profile lookup failures must name the offending files, the floor,
relative, and positivity gates must each fire, and a clean run must
pass -- so CI proves the gate still fails when it should.

Usage:
    python3 scripts/check_bench.py BASELINE.json FRESH.json [--same-host]
    python3 scripts/check_bench.py --trace TRACE_BASELINE.json TRACE_FRESH.json
    python3 scripts/check_bench.py --selftest
"""

import json
import sys

# A fresh ratio may drop at most this fraction below the baseline.
TOLERANCE = 0.30

# Per-bench gating profiles, keyed by the JSON files' own "bench"
# field.  Each profile lists:
#
#   asserted -- speedup keys gated relatively against the baseline,
#               with the hard floor each must also clear regardless of
#               the baseline (None = relative gate only).  The floors
#               mirror the asserts inside the bench binaries so a stale
#               baseline cannot weaken them.
#   positive -- keys that are host-dependent absolute rates (e.g. a
#               queries/s figure): required to be present and > 0, but
#               never compared across hosts.
#   excluded -- ratios excluded on purpose (core-count scaling figures
#               that legitimately sit near 1x on single-core runners);
#               listed so a typo'd key is caught below.
PROFILES = {
    "kernel": {
        "asserted": {
            "sat_bitset_vs_btreeset": 2.0,
            "measure_dense_vs_generic": 2.0,
            "pr_ge_dag_on_vs_off": 2.0,
            "pr_ge_plan_on_vs_off": 2.0,
        },
        "positive": set(),
        "excluded": {"par_sat_threads4_vs_1"},
    },
    "shared": {
        "asserted": {
            # ~1x on one core, > 1x with real parallelism; the relative
            # gate catches a sharding regression on either kind of host.
            "sharded_memo_vs_mutex": None,
        },
        "positive": {"shared_artifact_qps"},
        "excluded": {"shared_threads4_vs_1"},
    },
    "serve": {
        # The soak bench (BENCH_7) asserts bit-identity against the
        # serial model in-process before timing anything, so the gate
        # only has host-dependent rates left to check: the aggregate
        # query rate over the wire and the p50/p99 of the per-frame
        # service latency histogram. All are absolute figures, so like
        # shared_artifact_qps they are presence + positivity only; the
        # latency *ordering* (p99 >= p50 > 0) is asserted by the bench
        # binary itself and re-checked below in check_serve_latency.
        "asserted": {},
        "positive": {
            "serve_qps",
            "serve_frame_p50_ns",
            "serve_frame_p99_ns",
        },
        "excluded": {"serve_clients4_vs_1"},
    },
    "scale": {
        # The BENCH_9 size ladder (10^4 -> 10^6 points, 10^7 opt-in).
        # Only the 10^6 rung's wide-vs-narrow ratio carries the hard
        # floor: at a million points the 4xu64 + footprint-skip kernel
        # must beat the scalar full-span reference by >= 2x, and the
        # relative gate keeps the committed margin (~400x) from eroding
        # silently.  The small-rung ratios are the same-host quantity
        # but their wide passes sit in the low microseconds, where
        # timer jitter swamps a 30% tolerance -- so they are gated as
        # presence + positivity only.  The per-point throughputs are
        # host-dependent absolute rates, positivity-only like
        # shared_artifact_qps.
        "asserted": {
            "ladder_wide_vs_narrow_1e6": 2.0,
        },
        "positive": {
            "ladder_wide_vs_narrow_1e4",
            "ladder_wide_vs_narrow_1e5",
            "sat_pts_per_s_1e4",
            "sat_pts_per_s_1e5",
            "sat_pts_per_s_1e6",
            "knows_pts_per_s_1e4",
            "knows_pts_per_s_1e5",
            "knows_pts_per_s_1e6",
            "pr_family_pts_per_s_1e4",
            "pr_family_pts_per_s_1e5",
            "pr_family_pts_per_s_1e6",
            "measure_pts_per_s_1e4",
            "measure_pts_per_s_1e5",
            "measure_pts_per_s_1e6",
        },
        # The 10^7 rung only runs under KPA_LADDER_1E7=1 (tens of
        # seconds of build time on the 1-CPU CI runner), so its keys
        # are recognized but never required nor compared.
        "excluded": {
            "ladder_wide_vs_narrow_1e7",
            "sat_pts_per_s_1e7",
            "knows_pts_per_s_1e7",
            "pr_family_pts_per_s_1e7",
            "measure_pts_per_s_1e7",
        },
    },
}

# --trace mode: the schema version this gate understands.  v2 added the
# "windowed" (rolling-window p50/p99 summaries) and "spans" (dropped
# count + per-site aggregates) sections; both are required-present.
TRACE_SCHEMA_VERSION = 2

# --trace mode: the plan hit rate may drop at most this much (absolute)
# below the committed baseline before the gate fails.
HIT_RATE_SLACK = 0.10

# --trace mode: counters that must be present and positive in the fresh
# report's global counter map — each proves a PR 1-4/8/9 fast path
# actually ran (dense measure kernel, kernel construction, planned Pr
# sweep, sharded space cache, hash-consed formula arena, footprint-
# skipping set ops, wide block scans).
TRACE_REQUIRED_POSITIVE = (
    "measure.dense_query",
    "measure.kernel_built",
    "logic.plan_hit",
    "assign.space_cache_hit",
    "logic.terms_interned",
    "system.footprint_skipped_words",
    "measure.wide_blocks",
)

# --trace mode: the bench row whose counters carry the planned sweep
# (label prefix; the suffix encodes the point count).
PLAN_ROW_PREFIX = "pr_ge_family/plan_on/"
DENSE_ROW_PREFIX = "measure_interval/dense/"


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")


def bench_profile(baseline, fresh, baseline_path, fresh_path):
    """The gating profile both files agree on, or (None, failures)."""
    failures = []
    base_kind = baseline.get("bench")
    fresh_kind = fresh.get("bench")
    if base_kind != fresh_kind:
        failures.append(
            f"bench kinds differ: {baseline_path} is {base_kind!r}, "
            f"{fresh_path} is {fresh_kind!r} -- not comparable"
        )
        return None, failures
    if fresh_kind not in PROFILES:
        # Name the files carrying the kind: with stacked BENCH_N.json
        # baselines on disk, "unknown bench kind" alone does not say
        # which pair the gate choked on.
        failures.append(
            f"unknown bench kind {fresh_kind!r} in {baseline_path} and "
            f"{fresh_path}: add a profile to PROFILES in "
            "scripts/check_bench.py"
        )
        return None, failures
    return PROFILES[fresh_kind], failures


def check_speedups(profile, baseline, fresh):
    """Relative + floor + positivity gates over the profile's keys."""
    failures = []
    base_sp = baseline.get("speedups", {})
    fresh_sp = fresh.get("speedups", {})
    asserted = profile["asserted"]
    for key, floor in sorted(asserted.items()):
        if key not in base_sp:
            failures.append(f"baseline is missing speedup {key!r}")
            continue
        if key not in fresh_sp:
            failures.append(f"fresh run is missing speedup {key!r}")
            continue
        base, new = float(base_sp[key]), float(fresh_sp[key])
        cutoff = base * (1.0 - TOLERANCE)
        status = "ok"
        if new < cutoff:
            status = f"REGRESSED (> {TOLERANCE:.0%} below baseline)"
            failures.append(
                f"{key}: {new:.2f}x vs baseline {base:.2f}x "
                f"(cutoff {cutoff:.2f}x)"
            )
        if floor is not None and new < floor:
            status = f"BELOW FLOOR {floor:.1f}x"
            failures.append(f"{key}: {new:.2f}x is below the {floor:.1f}x floor")
        print(
            f"  {key:28s} baseline {base:8.2f}x  fresh {new:8.2f}x  {status}"
        )
    # Host-dependent absolute rates: must exist and be positive in the
    # fresh run, but two hosts' values are never compared.
    for key in sorted(profile["positive"]):
        if key not in fresh_sp:
            failures.append(f"fresh run is missing rate {key!r}")
            continue
        new = float(fresh_sp[key])
        status = "ok (host-dependent; presence only)"
        if not new > 0.0:
            status = "NOT POSITIVE"
            failures.append(f"{key}: {new} must be a positive rate")
        print(f"  {key:28s} fresh {new:16.0f}   {status}")
    # Keys neither asserted, positive-only, nor excluded are new rows
    # someone forgot to gate -- surface them rather than silently
    # ignoring.
    known = set(asserted) | profile["positive"] | profile["excluded"]
    for key in sorted(fresh_sp):
        if key not in known:
            failures.append(
                f"unrecognized speedup {key!r}: add it to the "
                f"{fresh.get('bench')!r} profile in scripts/check_bench.py"
            )
    return failures


def check_serve_latency(fresh):
    """Latency-histogram block validation for the "serve" bench.

    The quantile figures are host-dependent, so no cross-host
    comparison is made; what IS checked is internal consistency:
    0 < p50 <= p99, and the ``frame_latency/p50``/``p99`` rows must
    restate the same nanosecond figures in seconds (the rows exist so
    --same-host runs gate them like any other row).
    """
    failures = []
    sp = fresh.get("speedups", {})
    rows = {r["label"]: float(r["seconds"]) for r in fresh.get("rows", [])}
    p50 = float(sp.get("serve_frame_p50_ns", 0))
    p99 = float(sp.get("serve_frame_p99_ns", 0))
    status = "ok"
    if not 0 < p50 <= p99:
        status = "MISORDERED"
        failures.append(
            f"frame latency quantiles must satisfy 0 < p50 <= p99 "
            f"(got p50={p50}ns, p99={p99}ns)"
        )
    print(f"  {'frame latency ordering':28s} p50 {p50:10.0f}ns  p99 {p99:10.0f}ns  {status}")
    for label, ns in (("frame_latency/p50", p50), ("frame_latency/p99", p99)):
        secs = rows.get(label)
        if secs is None:
            failures.append(f"fresh run is missing the {label!r} row")
        elif abs(secs - ns / 1e9) > 1e-12:
            failures.append(
                f"{label} row ({secs}s) disagrees with the speedups "
                f"block ({ns}ns)"
            )
    return failures


def check_rows_same_host(baseline, fresh):
    """Absolute per-row seconds gate (--same-host only)."""
    failures = []
    base_rows = {r["label"]: float(r["seconds"]) for r in baseline.get("rows", [])}
    for row in fresh.get("rows", []):
        label, secs = row["label"], float(row["seconds"])
        if label not in base_rows:
            print(f"  {label:44s} (new row, no baseline)")
            continue
        base = base_rows[label]
        limit = base * (1.0 + TOLERANCE)
        status = "ok"
        if secs > limit:
            status = f"REGRESSED (> {TOLERANCE:.0%} slower)"
            failures.append(
                f"{label}: {secs * 1e3:.3f}ms vs baseline {base * 1e3:.3f}ms"
            )
        print(
            f"  {label:44s} baseline {base * 1e3:10.3f}ms  "
            f"fresh {secs * 1e3:10.3f}ms  {status}"
        )
    return failures


def check_trace_schema(report, path):
    """Structural checks on one kpa-trace report."""
    failures = []

    def err(msg):
        failures.append(f"{path}: {msg}")

    if report.get("kpa_trace") != TRACE_SCHEMA_VERSION:
        err(
            f"kpa_trace version {report.get('kpa_trace')!r} != "
            f"{TRACE_SCHEMA_VERSION}"
        )
    if not isinstance(report.get("enabled"), bool):
        err("'enabled' must be a boolean")
    counters = report.get("counters")
    if not isinstance(counters, dict):
        err("'counters' must be an object")
        counters = {}
    for name, val in counters.items():
        if not isinstance(name, str) or not isinstance(val, int) or val < 0:
            err(f"counter {name!r} must map a string to a non-negative int")
    hists = report.get("histograms")
    if not isinstance(hists, dict):
        err("'histograms' must be an object")
        hists = {}
    for name, h in hists.items():
        for field in ("count", "sum", "min", "max", "buckets"):
            if field not in h:
                err(f"histogram {name!r} is missing {field!r}")
        mass = sum(n for _, n in h.get("buckets", []))
        if h.get("count") != mass:
            err(
                f"histogram {name!r}: count {h.get('count')} != "
                f"bucket mass {mass}"
            )
        floors = [f for f, _ in h.get("buckets", [])]
        if floors != sorted(floors):
            err(f"histogram {name!r}: bucket floors must ascend")
    windowed = report.get("windowed")
    if not isinstance(windowed, dict):
        err("'windowed' must be an object (schema v2)")
        windowed = {}
    for name, w in windowed.items():
        for field in ("count", "sum", "p50", "p99"):
            if field not in w:
                err(f"windowed {name!r} is missing {field!r}")
        for field in ("count", "sum"):
            val = w.get(field, 0)
            if not isinstance(val, int) or val < 0:
                err(f"windowed {name!r}: {field!r} must be a non-negative int")
        p50, p99 = w.get("p50"), w.get("p99")
        for field, val in (("p50", p50), ("p99", p99)):
            if val is not None and (not isinstance(val, int) or val < 0):
                err(f"windowed {name!r}: {field!r} must be null or a "
                    "non-negative int")
        if isinstance(p50, int) and isinstance(p99, int) and p50 > p99:
            err(f"windowed {name!r}: p50 {p50} > p99 {p99}")
        if w.get("count", 0) > 0 and p50 is None:
            err(f"windowed {name!r}: a non-empty window must carry p50")
    spans = report.get("spans")
    if not isinstance(spans, dict):
        err("'spans' must be an object (schema v2)")
        spans = {}
    s_dropped = spans.get("dropped")
    if not isinstance(s_dropped, int) or s_dropped < 0:
        err("spans 'dropped' must be a non-negative int")
    sites = spans.get("sites")
    if not isinstance(sites, dict):
        err("spans 'sites' must be an object")
        sites = {}
    for name, site in sites.items():
        for field in ("count", "total_ns", "max_ns"):
            val = site.get(field)
            if not isinstance(val, int) or val < 0:
                err(f"span site {name!r}: {field!r} must be a "
                    "non-negative int")
        if site.get("max_ns", 0) > site.get("total_ns", 0):
            err(f"span site {name!r}: max_ns exceeds total_ns")
    rows = report.get("rows")
    if not isinstance(rows, dict):
        err("'rows' must be an object")
        rows = {}
    for label, row in rows.items():
        if not isinstance(row, dict) or any(
            not isinstance(v, int) or v < 0 for v in row.values()
        ):
            err(f"row {label!r} must map counter names to non-negative ints")
    if not isinstance(report.get("events"), list):
        err("'events' must be an array")
    dropped = report.get("dropped_events")
    if not isinstance(dropped, int) or dropped < 0:
        err("'dropped_events' must be a non-negative int")
    return failures


def find_row(report, prefix):
    """The single bench row whose label starts with ``prefix``."""
    matches = [r for label, r in report.get("rows", {}).items()
               if label.startswith(prefix)]
    return matches[0] if len(matches) == 1 else None


def plan_hit_rate(row):
    hits = row.get("logic.plan_hit", 0)
    fallbacks = row.get("logic.plan_fallback", 0)
    total = hits + fallbacks
    return hits / total if total else 0.0


def check_trace(baseline, fresh, baseline_path, fresh_path):
    """Schema + dense-path + plan-hit-rate gates over trace reports."""
    failures = check_trace_schema(fresh, fresh_path)
    failures += check_trace_schema(baseline, baseline_path)

    counters = fresh.get("counters", {})
    for name in TRACE_REQUIRED_POSITIVE:
        val = counters.get(name, 0)
        status = "ok" if val > 0 else "MISSING/ZERO"
        print(f"  {name:28s} {val:12d}  {status}")
        if val <= 0:
            failures.append(f"required counter {name!r} is absent or zero")

    # Schema v2: the traced bench feeds every row's wall time into the
    # "bench.row_ns" rolling window, so a fresh report with an empty
    # windowed section means the rolling path silently stopped
    # recording.
    windows = fresh.get("windowed", {})
    win_samples = sum(
        w.get("count", 0) for w in windows.values() if isinstance(w, dict)
    )
    status = "ok" if win_samples > 0 else "EMPTY"
    print(f"  {'windowed samples':28s} {win_samples:12d}  {status}")
    if win_samples <= 0:
        failures.append(
            "fresh report's 'windowed' section holds no samples; the "
            "traced bench must record into a rolling window"
        )
    n_sites = len(fresh.get("spans", {}).get("sites", {}))
    status = "ok" if n_sites > 0 else "EMPTY"
    print(f"  {'span sites':28s} {n_sites:12d}  {status}")
    if n_sites <= 0:
        failures.append(
            "fresh report recorded no span sites; the traced bench runs "
            "instrumented span! scopes and must surface them"
        )

    dense_row = find_row(fresh, DENSE_ROW_PREFIX)
    if dense_row is None:
        failures.append(f"no unique row with prefix {DENSE_ROW_PREFIX!r}")
    else:
        fallbacks = dense_row.get("assign.generic_measure", 0)
        status = "ok" if fallbacks == 0 else "FELL BACK"
        print(f"  {'dense-row generic fallbacks':28s} {fallbacks:12d}  {status}")
        if fallbacks:
            failures.append(
                f"dense bench row took {fallbacks} generic fallback(s); "
                "the kernel rows must exercise the dense path"
            )

    fresh_row = find_row(fresh, PLAN_ROW_PREFIX)
    base_row = find_row(baseline, PLAN_ROW_PREFIX)
    if fresh_row is None or base_row is None:
        failures.append(f"no unique row with prefix {PLAN_ROW_PREFIX!r}")
    else:
        base_rate, new_rate = plan_hit_rate(base_row), plan_hit_rate(fresh_row)
        cutoff = base_rate - HIT_RATE_SLACK
        status = "ok" if new_rate >= cutoff else "REGRESSED"
        print(
            f"  {'plan hit rate':28s} baseline {base_rate:6.1%}  "
            f"fresh {new_rate:6.1%}  {status}"
        )
        if new_rate < cutoff:
            failures.append(
                f"plan hit rate {new_rate:.1%} fell more than "
                f"{HIT_RATE_SLACK:.0%} below baseline {base_rate:.1%}"
            )
    return failures


def selftest():
    """Checks the gate's own failure paths against synthetic inputs.

    A gate that silently stopped failing is worse than no gate, so CI
    runs this before trusting any PASS: profile lookup errors must name
    the offending files, and the floor, relative, positivity, and
    unrecognized-key checks must each fire on inputs built to trip
    them -- then a clean pair must pass with zero failures.
    """
    import contextlib
    import io

    def bench(kind, speedups):
        return {"bench": kind, "speedups": speedups}

    def run_speedups(profile, base, fresh):
        # The row-by-row prints are for the real gate's log, not ours.
        with contextlib.redirect_stdout(io.StringIO()):
            return check_speedups(profile, base, fresh)

    # Profile lookup: an unknown kind must name BOTH files, so the
    # operator knows which BENCH_N pair to fix.
    profile, fails = bench_profile(
        bench("warp", {}), bench("warp", {}), "base.json", "fresh.json"
    )
    assert profile is None and len(fails) == 1, fails
    assert "base.json" in fails[0] and "fresh.json" in fails[0], fails
    assert "'warp'" in fails[0], fails
    print("  profile lookup: unknown kind names both files      ok")

    # Mismatched kinds are named file-by-file too.
    profile, fails = bench_profile(
        bench("kernel", {}), bench("scale", {}), "base.json", "fresh.json"
    )
    assert profile is None and len(fails) == 1, fails
    assert "base.json" in fails[0] and "fresh.json" in fails[0], fails
    print("  profile lookup: kind mismatch names both files     ok")

    # A known kind resolves with no failures.
    profile, fails = bench_profile(
        bench("scale", {}), bench("scale", {}), "b", "f"
    )
    assert profile is PROFILES["scale"] and not fails, fails
    print("  profile lookup: known kind resolves                ok")

    prof = {"asserted": {"ratio": 2.0}, "positive": {"rate"}, "excluded": set()}
    ok_base = bench("x", {"ratio": 3.0, "rate": 10.0})

    # Floor: below the hard 2.0x even though the baseline is worse
    # (the relative gate alone would wave it through).
    fails = run_speedups(prof, bench("x", {"ratio": 1.0, "rate": 1.0}),
                         bench("x", {"ratio": 1.5, "rate": 1.0}))
    assert any("below the 2.0x floor" in f for f in fails), fails
    print("  speedup gate: absolute floor fires                 ok")

    # Relative: above the floor but > TOLERANCE below the baseline.
    fails = run_speedups(prof, bench("x", {"ratio": 10.0, "rate": 1.0}),
                         bench("x", {"ratio": 6.0, "rate": 1.0}))
    assert any("vs baseline" in f for f in fails), fails
    print("  speedup gate: relative tolerance fires             ok")

    # Positivity: a zero rate fails even though no ratio regressed.
    fails = run_speedups(prof, ok_base, bench("x", {"ratio": 3.0, "rate": 0.0}))
    assert any("must be a positive rate" in f for f in fails), fails
    print("  speedup gate: positivity fires                     ok")

    # Unrecognized keys surface instead of passing silently.
    fails = run_speedups(prof, ok_base,
                         bench("x", {"ratio": 3.0, "rate": 1.0, "novel": 9.0}))
    assert any("unrecognized speedup 'novel'" in f for f in fails), fails
    print("  speedup gate: unrecognized key fires               ok")

    # And a clean pair passes with zero failures.
    fails = run_speedups(prof, ok_base, bench("x", {"ratio": 2.9, "rate": 5.0}))
    assert fails == [], fails
    print("  speedup gate: clean pair passes                    ok")

    # Trace schema v2: a well-formed report passes clean, and the
    # windowed / spans validators each fire on inputs built to trip
    # them.
    def trace_report(**overrides):
        report = {
            "kpa_trace": TRACE_SCHEMA_VERSION,
            "enabled": True,
            "counters": {"measure.dense_query": 3},
            "histograms": {},
            "windowed": {
                "bench.row_ns": {"count": 2, "sum": 12, "p50": 4, "p99": 8}
            },
            "spans": {
                "dropped": 0,
                "sites": {
                    "system.build_ns": {
                        "count": 2, "total_ns": 9, "max_ns": 7
                    }
                },
            },
            "rows": {},
            "events": [],
            "dropped_events": 0,
        }
        report.update(overrides)
        return report

    assert check_trace_schema(trace_report(), "t.json") == []
    print("  trace schema: well-formed v2 report passes         ok")

    fails = check_trace_schema(trace_report(kpa_trace=1), "t.json")
    assert any("kpa_trace version" in f for f in fails), fails
    print("  trace schema: stale version fires                  ok")

    fails = check_trace_schema(
        {k: v for k, v in trace_report().items() if k != "windowed"}, "t.json"
    )
    assert any("'windowed' must be an object" in f for f in fails), fails
    fails = check_trace_schema(
        {k: v for k, v in trace_report().items() if k != "spans"}, "t.json"
    )
    assert any("'spans' must be an object" in f for f in fails), fails
    print("  trace schema: missing v2 sections fire             ok")

    fails = check_trace_schema(
        trace_report(windowed={"w": {"count": 1, "sum": 9,
                                     "p50": 9, "p99": 3}}),
        "t.json",
    )
    assert any("p50 9 > p99 3" in f for f in fails), fails
    fails = check_trace_schema(
        trace_report(windowed={"w": {"count": 1, "sum": 9,
                                     "p50": None, "p99": None}}),
        "t.json",
    )
    assert any("must carry p50" in f for f in fails), fails
    print("  trace schema: windowed quantile checks fire        ok")

    fails = check_trace_schema(
        trace_report(spans={"dropped": 0, "sites": {
            "s": {"count": 1, "total_ns": 2, "max_ns": 5}}}),
        "t.json",
    )
    assert any("max_ns exceeds total_ns" in f for f in fails), fails
    fails = check_trace_schema(
        trace_report(spans={"dropped": -1, "sites": {}}), "t.json"
    )
    assert any("'dropped' must be a non-negative int" in f for f in fails), fails
    print("  trace schema: span site checks fire                ok")

    # The trace gate end to end: a clean pair passes, and a fresh
    # report whose rolling window went silent is rejected.
    def full_trace(**overrides):
        counters = {name: 5 for name in TRACE_REQUIRED_POSITIVE}
        return trace_report(
            counters=counters,
            rows={
                "measure_interval/dense/8x100": {"measure.dense_query": 5},
                "pr_ge_family/plan_on/100": {
                    "logic.plan_hit": 9, "logic.plan_fallback": 1
                },
            },
            **overrides,
        )

    with contextlib.redirect_stdout(io.StringIO()):
        fails = check_trace(full_trace(), full_trace(), "b.json", "f.json")
    assert fails == [], fails
    with contextlib.redirect_stdout(io.StringIO()):
        fails = check_trace(
            full_trace(), full_trace(windowed={}), "b.json", "f.json"
        )
    assert any("holds no samples" in f for f in fails), fails
    with contextlib.redirect_stdout(io.StringIO()):
        fails = check_trace(
            full_trace(),
            full_trace(spans={"dropped": 0, "sites": {}}),
            "b.json",
            "f.json",
        )
    assert any("no span sites" in f for f in fails), fails
    print("  trace gate: clean pass + empty-window/site firing  ok")

    # Every committed profile is structurally sound and internally
    # disjoint (a key in two buckets would be gated ambiguously).
    for kind, p in PROFILES.items():
        assert set(p) == {"asserted", "positive", "excluded"}, kind
        buckets = [set(p["asserted"]), p["positive"], p["excluded"]]
        total = sum(len(b) for b in buckets)
        assert len(set().union(*buckets)) == total, f"{kind}: overlapping keys"
    print(f"  profiles: {len(PROFILES)} structurally sound and disjoint    ok")

    print("selftest passed.")
    return 0


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    flags = set(argv) - set(args)
    unknown = flags - {"--same-host", "--trace", "--selftest"}
    usage = "\n".join(__doc__.strip().splitlines()[-3:])
    if "--selftest" in flags:
        if unknown or args or flags != {"--selftest"}:
            sys.exit(usage)
        print("check_bench selftest:")
        return selftest()
    if unknown or len(args) != 2:
        sys.exit(usage)
    baseline_path, fresh_path = args
    baseline, fresh = load(baseline_path), load(fresh_path)

    if "--trace" in flags:
        print(f"trace gate: {fresh_path} vs baseline {baseline_path}")
        failures = check_trace(baseline, fresh, baseline_path, fresh_path)
        if failures:
            print(f"\nFAIL: {len(failures)} trace gate failure(s):",
                  file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        print("trace gate passed.")
        return 0

    print(f"bench gate: {fresh_path} vs baseline {baseline_path}")
    profile, failures = bench_profile(baseline, fresh, baseline_path, fresh_path)
    if profile is not None:
        print(
            f"speedup ratios [{fresh.get('bench')}] "
            f"(tolerance {TOLERANCE:.0%}, host-independent):"
        )
        failures += check_speedups(profile, baseline, fresh)
        if fresh.get("bench") == "serve":
            failures += check_serve_latency(fresh)
    if "--same-host" in flags:
        print("absolute row seconds (--same-host):")
        failures += check_rows_same_host(baseline, fresh)

    if failures:
        print(f"\nFAIL: {len(failures)} bench regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
