#!/usr/bin/env python3
"""Bench-regression gate for the kernel bench JSON (stdlib only).

Compares a freshly generated ``BENCH_N.json`` against the committed
baseline and fails (exit 1) when any asserted row regressed by more
than the tolerance.

The two files are usually produced on *different machines* (the
committed baseline on a developer box, the fresh run on a CI runner),
so absolute row seconds are not comparable.  What *is* comparable is
each run's own ``speedups`` block: every speedup is a ratio of two rows
measured in the same process on the same host, so host speed divides
out.  The default mode therefore checks, per asserted speedup key:

  1. ``fresh >= baseline * (1 - TOLERANCE)``  -- the relative gate: a
     fresh ratio more than 30% below the committed one means the
     optimized path lost >30% throughput against its own reference
     path, i.e. a real regression rather than a slow runner.
  2. ``fresh >= floor(key)``                   -- the absolute floor the
     bench itself asserts (e.g. the dense measure kernel and the sample
     plan must each stay >= 2x their naive paths).

``par_sat_threads4_vs_1`` is deliberately *not* asserted: it measures
core-count scaling and legitimately sits near 1x on single-core
runners (the bench skips its own assert below 4 cores for the same
reason).

With ``--same-host`` the gate additionally compares absolute row
seconds (fresh <= baseline * (1 + TOLERANCE) per row), for use when
both files verifiably come from the same machine.

Usage:
    python3 scripts/check_bench.py BASELINE.json FRESH.json [--same-host]
"""

import json
import sys

# A fresh ratio may drop at most this fraction below the baseline.
TOLERANCE = 0.30

# Speedup keys the gate asserts, with the hard floor each must clear
# regardless of the baseline (None = relative gate only).  The floors
# mirror the asserts inside crates/bench/benches/kernel.rs so a stale
# baseline cannot weaken them.
ASSERTED = {
    "sat_bitset_vs_btreeset": 2.0,
    "measure_dense_vs_generic": 2.0,
    "pr_ge_memo_on_vs_off": None,  # ~1x by design; see EXPERIMENTS.md
    "pr_ge_plan_on_vs_off": 2.0,
}

# Ratios excluded on purpose; listed so a typo'd key is caught below.
EXCLUDED = {"par_sat_threads4_vs_1"}


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")


def check_speedups(baseline, fresh):
    """Relative + floor gates over the asserted speedup keys."""
    failures = []
    base_sp = baseline.get("speedups", {})
    fresh_sp = fresh.get("speedups", {})
    for key, floor in sorted(ASSERTED.items()):
        if key not in base_sp:
            failures.append(f"baseline is missing speedup {key!r}")
            continue
        if key not in fresh_sp:
            failures.append(f"fresh run is missing speedup {key!r}")
            continue
        base, new = float(base_sp[key]), float(fresh_sp[key])
        cutoff = base * (1.0 - TOLERANCE)
        status = "ok"
        if new < cutoff:
            status = f"REGRESSED (> {TOLERANCE:.0%} below baseline)"
            failures.append(
                f"{key}: {new:.2f}x vs baseline {base:.2f}x "
                f"(cutoff {cutoff:.2f}x)"
            )
        if floor is not None and new < floor:
            status = f"BELOW FLOOR {floor:.1f}x"
            failures.append(f"{key}: {new:.2f}x is below the {floor:.1f}x floor")
        print(
            f"  {key:28s} baseline {base:8.2f}x  fresh {new:8.2f}x  {status}"
        )
    # Keys neither asserted nor excluded are new rows someone forgot to
    # gate -- surface them rather than silently ignoring.
    for key in sorted(fresh_sp):
        if key not in ASSERTED and key not in EXCLUDED:
            failures.append(
                f"unrecognized speedup {key!r}: add it to ASSERTED or "
                "EXCLUDED in scripts/check_bench.py"
            )
    return failures


def check_rows_same_host(baseline, fresh):
    """Absolute per-row seconds gate (--same-host only)."""
    failures = []
    base_rows = {r["label"]: float(r["seconds"]) for r in baseline.get("rows", [])}
    for row in fresh.get("rows", []):
        label, secs = row["label"], float(row["seconds"])
        if label not in base_rows:
            print(f"  {label:44s} (new row, no baseline)")
            continue
        base = base_rows[label]
        limit = base * (1.0 + TOLERANCE)
        status = "ok"
        if secs > limit:
            status = f"REGRESSED (> {TOLERANCE:.0%} slower)"
            failures.append(
                f"{label}: {secs * 1e3:.3f}ms vs baseline {base * 1e3:.3f}ms"
            )
        print(
            f"  {label:44s} baseline {base * 1e3:10.3f}ms  "
            f"fresh {secs * 1e3:10.3f}ms  {status}"
        )
    return failures


def main(argv):
    args = [a for a in argv if not a.startswith("--")]
    flags = set(argv) - set(args)
    unknown = flags - {"--same-host"}
    if unknown or len(args) != 2:
        sys.exit(__doc__.strip().splitlines()[-1].strip())
    baseline_path, fresh_path = args
    baseline, fresh = load(baseline_path), load(fresh_path)

    print(f"bench gate: {fresh_path} vs baseline {baseline_path}")
    print(f"speedup ratios (tolerance {TOLERANCE:.0%}, host-independent):")
    failures = check_speedups(baseline, fresh)
    if "--same-host" in flags:
        print("absolute row seconds (--same-host):")
        failures += check_rows_same_host(baseline, fresh)

    if failures:
        print(f"\nFAIL: {len(failures)} bench regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
