#!/usr/bin/env bash
# CI entry point: the checks every PR must pass, runnable fully offline.
#
#   ./scripts/ci.sh          # fmt + build + test + bench gate + clippy
#   FUZZ=1 ./scripts/ci.sh   # additionally run the widened property sweeps
#
# FUZZ=1 multiplies the sharded property-test case counts ~5x
# (CASES 24 -> 128); in the hosted workflow those sweeps run as a
# nightly scheduled job plus an opt-in `ci-fuzz` PR label rather than
# on every push — see .github/workflows/ci.yml.  Locally the knob runs
# them inline.
#
# The workspace has no external dependencies, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

# The serial/parallel differential suites at a pinned serial width and
# a pinned parallel width: KPA_THREADS=1 is the reference semantics, and
# KPA_THREADS=4 must reproduce it bit-for-bit regardless of core count.
# RUST_TEST_THREADS rides along so the sharded case splits inside each
# binary line up with the pool width (tests/common shards by it).
# measure_kernel_differential pins the dense word-masked measure kernel
# against the generic scan, plan_differential pins the batched
# sample-plan table against the naive per-point path,
# trace_invisibility pins bit-identical results with kpa-trace off and
# on, shared_artifact_differential pins M client threads over one
# Arc<ModelArtifact> against the serial Model facade, and
# serve_differential/serve_protocol pin the kpa-serve loopback service
# (wire answers bit-identical to the serial model; malformed, fuzzed,
# oversized, and mid-batch-disconnect frames never wedge a server),
# all at each width — the pool width inside the server comes from
# KPA_THREADS, so the matrix re-certifies the service end to end.
for threads in 1 4; do
    echo "==> KPA_THREADS=${threads} RUST_TEST_THREADS=${threads} cargo test -q --offline --test parallel_differential --test memo_consistency --test measure_kernel_differential --test plan_differential --test trace_invisibility --test shared_artifact_differential --test serve_differential --test serve_protocol --test compile_differential"
    KPA_THREADS="${threads}" RUST_TEST_THREADS="${threads}" cargo test -q --offline \
        --test parallel_differential --test memo_consistency \
        --test measure_kernel_differential --test plan_differential \
        --test trace_invisibility --test shared_artifact_differential \
        --test serve_differential --test serve_protocol \
        --test compile_differential
done

# The bench gate checks itself before anything trusts its PASS: the
# selftest trips each failure path (profile lookup naming the files,
# the floor, relative, positivity, and unrecognized-key checks) on
# synthetic inputs.
echo "==> python3 scripts/check_bench.py --selftest"
python3 scripts/check_bench.py --selftest

# Bench smoke + regression gates: the kernel bench asserts its output
# identities, the dense measure kernel's ≥ 2× bound, the compiled
# threshold family's ≥ 2× bound, and the sample plan's ≥ 2× bound; the
# shared bench asserts shared-artifact results bit-identical to the
# serial facade and times the sharded memos.  The serve soak bench
# asserts wire answers bit-identical to the serial facade, then times
# loopback clients and exports the frame latency histogram.  The scale
# ladder builds 10^4/10^5/10^6-point systems, asserts the wide
# footprint-skipping set kernel bit-identical to (and ≥ 2× faster at
# 10^6 than) the scalar full-span reference, and reports per-point
# throughput per rung.  scripts/check_bench.py then compares the
# fresh speedup ratios against the committed BENCH_8.json,
# BENCH_6.json, BENCH_7.json and BENCH_9.json (30% tolerance) and the
# fresh trace report against TRACE_10.json (schema v2 incl. rolling
# windows + span sites, dense-path, plan-hit-rate, and wide-kernel
# counters, exact).  The fresh rows go to
# target/ so the committed baselines are not clobbered; regenerate the
# baselines with a plain ./scripts/bench.sh.
echo "==> scripts/bench.sh (kernel + shared + serve soak + scale ladder bench smoke + regression gates)"
KPA_BENCH8_JSON="${KPA_BENCH8_JSON:-target/BENCH_8.fresh.json}" \
    KPA_TRACE_JSON="${KPA_TRACE_JSON:-target/TRACE_10.fresh.json}" \
    KPA_BENCH6_JSON="${KPA_BENCH6_JSON:-target/BENCH_6.fresh.json}" \
    KPA_BENCH7_JSON="${KPA_BENCH7_JSON:-target/BENCH_7.fresh.json}" \
    KPA_BENCH9_JSON="${KPA_BENCH9_JSON:-target/BENCH_9.fresh.json}" ./scripts/bench.sh

if [[ "${FUZZ:-0}" == "1" ]]; then
    echo "==> cargo test -q --offline --workspace --features fuzz"
    cargo test -q --offline --workspace --features fuzz
fi

if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

echo "CI checks passed."
