#!/usr/bin/env bash
# CI entry point: the checks every PR must pass, runnable fully offline.
#
#   ./scripts/ci.sh          # build + test + clippy
#   FUZZ=1 ./scripts/ci.sh   # additionally run the widened property sweeps
#
# The workspace has no external dependencies, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

# The serial/parallel differential suites at a pinned serial width and
# a pinned parallel width: KPA_THREADS=1 is the reference semantics, and
# KPA_THREADS=4 must reproduce it bit-for-bit regardless of core count.
# measure_kernel_differential additionally pins the dense word-masked
# measure kernel against the generic scan at both widths.
for threads in 1 4; do
    echo "==> KPA_THREADS=${threads} cargo test -q --offline --test parallel_differential --test memo_consistency --test measure_kernel_differential"
    KPA_THREADS="${threads}" cargo test -q --offline \
        --test parallel_differential --test memo_consistency \
        --test measure_kernel_differential
done

# Bench smoke: the kernel bench asserts its output identities and the
# dense measure kernel's ≥ 2× single-thread bound, and regenerates
# BENCH_3.json (quick best-of-3 reps; BENCH=1 for the long sweeps).
echo "==> scripts/bench.sh (kernel bench smoke + BENCH_3.json)"
./scripts/bench.sh

if [[ "${FUZZ:-0}" == "1" ]]; then
    echo "==> cargo test -q --offline --workspace --features fuzz"
    cargo test -q --offline --workspace --features fuzz
fi

if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

echo "CI checks passed."
