#!/usr/bin/env bash
# CI entry point: the checks every PR must pass, runnable fully offline.
#
#   ./scripts/ci.sh          # build + test + clippy
#   FUZZ=1 ./scripts/ci.sh   # additionally run the widened property sweeps
#
# The workspace has no external dependencies, so --offline always works.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

# The serial/parallel differential suite at a pinned serial width and a
# pinned parallel width: KPA_THREADS=1 is the reference semantics, and
# KPA_THREADS=4 must reproduce it bit-for-bit regardless of core count.
for threads in 1 4; do
    echo "==> KPA_THREADS=${threads} cargo test -q --offline --test parallel_differential --test memo_consistency"
    KPA_THREADS="${threads}" cargo test -q --offline \
        --test parallel_differential --test memo_consistency
done

if [[ "${FUZZ:-0}" == "1" ]]; then
    echo "==> cargo test -q --offline --workspace --features fuzz"
    cargo test -q --offline --workspace --features fuzz
fi

if command -v cargo-clippy >/dev/null 2>&1 || cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets --offline -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lint step"
fi

echo "CI checks passed."
