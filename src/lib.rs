//! # kpa — Knowledge, Probability, and Adversaries
//!
//! Facade crate re-exporting the whole workspace — an executable
//! reproduction of Halpern & Tuttle, *"Knowledge, Probability, and
//! Adversaries"* (JACM 40(4), 1993). See the repository README for an
//! overview and `DESIGN.md` for the paper-to-module map; the member
//! crates carry the detailed documentation:
//!
//! * [`measure`] — exact rationals and finite probability spaces;
//! * [`system`] — runs, points, computation trees, the protocol DSL;
//! * [`assign`] — the probability assignments and their lattice;
//! * [`logic`] — the language `L(Φ)`, model checker, parser, proofs;
//! * [`betting`] — the betting game and safe bets (Theorems 7–9);
//! * [`asynchrony`] — type-3 adversaries: cuts and cut classes;
//! * [`protocols`] — every system the paper analyzes;
//! * [`pool`] — the deterministic work-stealing thread pool behind the
//!   per-tree sweeps (`KPA_THREADS` selects the width);
//! * [`trace`] — zero-dep counters/histograms/spans across every layer
//!   (`KPA_TRACE=1` or `trace::set_enabled(true)` switches them on;
//!   off, they are observationally invisible no-ops);
//! * [`serve`] — the model-checking service: a line-delimited JSON
//!   protocol over TCP, the system catalog, and the blocking client
//!   (`kpa-serve` / `kpa-explore --connect` are thin wrappers).
//!
//! # Example
//!
//! The introduction's secret coin, model checked at an explicit thread
//! count — parallel sweeps are bit-identical to serial by construction:
//!
//! ```
//! use kpa::prelude::*;
//!
//! let sys = ProtocolBuilder::new(["p1", "p2", "p3"])
//!     .coin("c", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &["p3"])
//!     .build()?;
//! let post = ProbAssignment::new(&sys, Assignment::post());
//!
//! // p1 knows Pr(heads) = 1/2 at time 1 — at any pool width.
//! let f = Formula::prop("c=h").k_interval(AgentId(0), rat!(1 / 2), rat!(1 / 2));
//! let serial = kpa::pool::with_threads(1, || Model::new(&post).sat(&f))?;
//! let parallel = kpa::pool::with_threads(2, || Model::new(&post).sat(&f))?;
//! assert_eq!(*serial, *parallel);
//! assert_eq!(serial.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kpa_assign as assign;
pub use kpa_asynchrony as asynchrony;
pub use kpa_betting as betting;
pub use kpa_logic as logic;
pub use kpa_measure as measure;
pub use kpa_pool as pool;
pub use kpa_protocols as protocols;
pub use kpa_serve as serve;
pub use kpa_system as system;
pub use kpa_trace as trace;

/// The most commonly used items, for glob import:
/// `use kpa::prelude::*;`.
pub mod prelude {
    pub use kpa_assign::{Assignment, ProbAssignment};
    pub use kpa_asynchrony::CutClass;
    pub use kpa_betting::{BetRule, BettingGame, Strategy};
    pub use kpa_logic::{Formula, Model};
    pub use kpa_measure::{rat, Rat};
    pub use kpa_system::{AgentId, Branch, PointId, ProtocolBuilder, System, TreeId};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reaches_everything() {
        use crate::prelude::*;
        let sys = ProtocolBuilder::new(["a", "b"])
            .coin("c", &[("h", rat!(1 / 2)), ("t", rat!(1 / 2))], &["a"])
            .build()
            .unwrap();
        let post = ProbAssignment::new(&sys, Assignment::post());
        let model = Model::new(&post);
        let f = Formula::prop("c=h").known_by(AgentId(0));
        assert_eq!(model.sat(&f).unwrap().len(), 1);
        let rule = BetRule::new(
            sys.points_satisfying(sys.prop_id("c=h").unwrap()),
            Rat::new(1, 2),
        )
        .unwrap();
        let game = BettingGame::new(&sys, AgentId(1), AgentId(0));
        assert!(!game
            .is_safe_at(
                PointId {
                    tree: TreeId(0),
                    run: 0,
                    time: 1
                },
                &rule
            )
            .unwrap());
        let _ = (
            CutClass::AllPoints,
            Strategy::silent(),
            Branch::new(Rat::ONE),
        );
    }
}
