//! `kpa-serve` — the model-checking service, as a process.
//!
//! ```console
//! $ kpa-serve --addr 127.0.0.1:4061
//! kpa-serve listening on 127.0.0.1:4061 (proto v1)
//! $ printf '%s\n' '{"v":1,"op":"load","system":"secret-coin","assignment":"post"}' \
//!       '{"v":1,"op":"query","queries":[{"kind":"holds","formula":"K{p3} c=h","point":[0,0,1]}]}' \
//!       '{"v":1,"op":"bye"}' | nc 127.0.0.1 4061
//! ```
//!
//! The process runs until stdin reaches EOF (so `kpa-serve < /dev/null`
//! exits immediately after binding, and an interactive run stops on
//! ctrl-d), a `quit` line is typed, or `--for-secs N` elapses —
//! whichever comes first. Shutdown is clean: the accept loop stops,
//! every live connection receives a fatal `shutting_down` frame, and
//! all threads are joined before the final stats print.
//!
//! Protocol, limits, and error codes are documented in
//! `kpa::serve::proto` and DESIGN.md §3.2g.

use kpa::serve::{ServeConfig, Server};
use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    config: ServeConfig,
    for_secs: Option<u64>,
    stats: bool,
    preload: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        config: ServeConfig::default(),
        for_secs: None,
        stats: false,
        preload: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let num = |flag: &str, v: String| -> Result<u64, String> {
            v.parse::<u64>()
                .map_err(|_| format!("{flag} expects a number; got {v:?}"))
        };
        match arg.as_str() {
            "--addr" => args.config.addr = take("--addr")?,
            "--max-conns" => {
                args.config.max_conns = num("--max-conns", take("--max-conns")?)? as usize;
            }
            "--max-frame" => {
                args.config.max_frame = num("--max-frame", take("--max-frame")?)? as usize;
            }
            "--max-batch" => {
                args.config.max_batch = num("--max-batch", take("--max-batch")?)? as usize;
            }
            "--idle-secs" => {
                args.config.idle_timeout =
                    Duration::from_secs(num("--idle-secs", take("--idle-secs")?)?);
            }
            "--for-secs" => args.for_secs = Some(num("--for-secs", take("--for-secs")?)?),
            "--stats" => args.stats = true,
            "--preload" => args.preload.push(take("--preload")?),
            "--help" | "-h" => {
                return Err("usage: kpa-serve [--addr HOST:PORT] [--max-conns N] \
                            [--max-frame BYTES] [--max-batch N] [--idle-secs N] \
                            [--for-secs N] [--stats] [--preload SYSTEM[/ASSIGNMENT]]...\n\
                            Runs until stdin EOF, a `quit` line, or --for-secs. \
                            --stats prints process metrics at exit. --preload warms \
                            the artifact cache at boot (e.g. --preload secret-coin/post; \
                            repeatable; assignment defaults to post)."
                    .to_owned())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let mut server =
        Server::bind(args.config.clone()).map_err(|e| format!("bind {}: {e}", args.config.addr))?;
    for spec in &args.preload {
        let (system, assignment) = match spec.split_once('/') {
            Some((s, a)) => (s, a),
            None => (spec.as_str(), "post"),
        };
        let key = server
            .shared()
            .preload(system, assignment)
            .map_err(|e| format!("--preload {spec}: {e}"))?;
        println!("kpa-serve preloaded {key}");
    }
    println!(
        "kpa-serve listening on {} (proto v{})",
        server.local_addr(),
        kpa::serve::PROTO_VERSION
    );
    match args.for_secs {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => {
            // Block on stdin: EOF or an explicit `quit` stops the server.
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if l.trim() == "quit" => break,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }
    }
    let shared = std::sync::Arc::clone(server.shared());
    server.shutdown();
    if args.stats {
        let report = shared.proc().snapshot();
        print!("{}", report.render_table());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn argument_parsing() {
        let a = parse_args(&argv(&[
            "--addr",
            "127.0.0.1:0",
            "--max-conns",
            "8",
            "--max-frame",
            "4096",
            "--max-batch",
            "32",
            "--idle-secs",
            "2",
            "--for-secs",
            "0",
            "--stats",
            "--preload",
            "die/post",
            "--preload",
            "secret-coin",
        ]))
        .unwrap();
        assert_eq!(a.config.max_conns, 8);
        assert_eq!(a.config.max_frame, 4096);
        assert_eq!(a.config.max_batch, 32);
        assert_eq!(a.config.idle_timeout, Duration::from_secs(2));
        assert_eq!(a.for_secs, Some(0));
        assert!(a.stats);
        assert_eq!(a.preload, vec!["die/post", "secret-coin"]);
        assert!(parse_args(&argv(&["--frob"])).is_err());
        assert!(parse_args(&argv(&["--help"])).is_err());
        assert!(parse_args(&argv(&["--max-conns"])).is_err());
        assert!(parse_args(&argv(&["--max-conns", "x"])).is_err());
    }

    #[test]
    fn bind_serve_and_exit() {
        // --for-secs 0: bind, preload, serve nothing, shut down cleanly.
        run(&argv(&[
            "--addr",
            "127.0.0.1:0",
            "--for-secs",
            "0",
            "--stats",
            "--preload",
            "die",
        ]))
        .unwrap();
        // A bad address is a clean error, not a panic.
        assert!(run(&argv(&["--addr", "256.0.0.1:99999"])).is_err());
        // A bad preload spec is a clean error too.
        assert!(run(&argv(&[
            "--addr",
            "127.0.0.1:0",
            "--for-secs",
            "0",
            "--preload",
            "nope"
        ]))
        .is_err());
    }
}
