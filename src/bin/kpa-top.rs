//! `kpa-top` — a zero-dependency terminal dashboard for `kpa-serve`.
//!
//! ```console
//! $ kpa-top --addr 127.0.0.1:4061
//! ```
//!
//! Polls the server's `metrics` op (schema v2) on an interval and
//! renders, from successive snapshots:
//!
//! - **qps / error rate** — deltas of the process request/error
//!   counters between polls;
//! - **windowed latency** — p50/p99 over the server's rolling window
//!   for `proc.frame_ns` and `proc.query_ns` (recent behaviour, not
//!   lifetime averages);
//! - **artifact cache occupancy** — resident artifacts and their
//!   approximate bytes;
//! - **hottest span sites** — the top `span!` sites by total time
//!   (populated when the server runs with `KPA_TRACE=1`).
//!
//! `--frames N` exits after `N` refreshes (scripting/smoke tests);
//! `--plain` skips the ANSI clear-screen so output is appendable.

use kpa::serve::json::Value;
use kpa::serve::Client;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    interval: Duration,
    frames: Option<u64>,
    plain: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        interval: Duration::from_millis(1000),
        frames: None,
        plain: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = take("--addr")?,
            "--interval-ms" => {
                let v = take("--interval-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("--interval-ms expects a number; got {v:?}"))?;
                args.interval = Duration::from_millis(ms.max(1));
            }
            "--frames" => {
                let v = take("--frames")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--frames expects a number; got {v:?}"))?;
                args.frames = Some(n);
            }
            "--plain" => args.plain = true,
            "--help" | "-h" => {
                return Err("usage: kpa-top --addr HOST:PORT [--interval-ms N] \
                            [--frames N] [--plain]\n\
                            Polls a running kpa-serve's metrics op and renders qps, \
                            error rate, windowed p50/p99 latencies, artifact-cache \
                            occupancy, and the hottest span sites. --frames N exits \
                            after N refreshes; --plain skips the screen clear."
                    .to_owned())
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.addr.is_empty() {
        return Err("no --addr given (try --help)".to_owned());
    }
    Ok(args)
}

/// One decoded `metrics` snapshot, timestamped at receipt.
struct Sample {
    at: Instant,
    requests: u64,
    errors: u64,
    sessions: u64,
    artifacts: u64,
    artifact_bytes: u64,
    /// `(name, count, p50, p99)` per windowed process histogram.
    windowed: Vec<(String, u64, Option<u64>, Option<u64>)>,
    /// `(site, count, total_ns)` per reported span site, hottest first.
    spans: Vec<(String, u64, u64)>,
}

fn counter(frame: &Value, name: &str) -> u64 {
    frame
        .get("process")
        .and_then(|p| p.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_int)
        .unwrap_or(0) as u64
}

fn sample(client: &mut Client) -> Result<Sample, String> {
    let frame = client.metrics().map_err(|e| e.to_string())?;
    let windowed = frame
        .get("process")
        .and_then(|p| p.get("windowed"))
        .and_then(Value::as_obj)
        .map(|m| {
            m.iter()
                .map(|(name, w)| {
                    let int = |key: &str| w.get(key).and_then(Value::as_int).map(|v| v as u64);
                    (
                        name.clone(),
                        int("count").unwrap_or(0),
                        int("p50"),
                        int("p99"),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let spans = frame
        .get("spans")
        .and_then(|s| s.get("sites"))
        .and_then(Value::as_obj)
        .map(|m| {
            let mut sites: Vec<(String, u64, u64)> = m
                .iter()
                .map(|(site, s)| {
                    let int = |key: &str| s.get(key).and_then(Value::as_int).unwrap_or(0) as u64;
                    (site.clone(), int("count"), int("total_ns"))
                })
                .collect();
            sites.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
            sites
        })
        .unwrap_or_default();
    Ok(Sample {
        at: Instant::now(),
        requests: counter(&frame, "proc.requests"),
        errors: counter(&frame, "proc.errors"),
        sessions: counter(&frame, "proc.sessions"),
        artifacts: frame
            .get("artifacts_resident")
            .and_then(Value::as_int)
            .unwrap_or(0) as u64,
        artifact_bytes: frame
            .get("artifacts_resident_bytes")
            .and_then(Value::as_int)
            .unwrap_or(0) as u64,
        windowed,
        spans,
    })
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders one dashboard frame from two successive samples.
fn render(addr: &str, prev: &Sample, cur: &Sample) -> String {
    use std::fmt::Write as _;
    let dt = cur.at.duration_since(prev.at).as_secs_f64().max(1e-9);
    let d_req = cur.requests.saturating_sub(prev.requests);
    let d_err = cur.errors.saturating_sub(prev.errors);
    let qps = d_req as f64 / dt;
    let err_pct = if d_req > 0 {
        100.0 * d_err as f64 / d_req as f64
    } else {
        0.0
    };
    let mut out = String::new();
    let _ = writeln!(out, "kpa-top — {addr} — interval {:.1}s", dt);
    let _ = writeln!(
        out,
        "qps {qps:.1}   errors {err_pct:.1}%   sessions {}   artifacts {} ({} bytes)",
        cur.sessions, cur.artifacts, cur.artifact_bytes
    );
    let _ = writeln!(out, "windowed latency (rolling window):");
    if cur.windowed.is_empty() {
        let _ = writeln!(out, "  (no windowed histograms yet)");
    }
    for (name, count, p50, p99) in &cur.windowed {
        let _ = writeln!(
            out,
            "  {name:<20} n={count:<7} p50 {:<10} p99 {}",
            p50.map_or_else(|| "-".to_string(), fmt_ns),
            p99.map_or_else(|| "-".to_string(), fmt_ns),
        );
    }
    let _ = writeln!(out, "hottest span sites:");
    if cur.spans.is_empty() {
        let _ = writeln!(out, "  (none — run the server with KPA_TRACE=1)");
    }
    for (site, count, total_ns) in cur.spans.iter().take(8) {
        let _ = writeln!(
            out,
            "  {site:<28} count {count:<7} total {}",
            fmt_ns(*total_ns)
        );
    }
    out
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let mut client = Client::connect(&args.addr).map_err(|e| format!("connect: {e}"))?;
    client.hello().map_err(|e| format!("hello: {e}"))?;
    let mut prev = sample(&mut client)?;
    let mut remaining = args.frames;
    loop {
        if let Some(n) = &mut remaining {
            if *n == 0 {
                return Ok(());
            }
            *n -= 1;
        }
        std::thread::sleep(args.interval);
        let cur = sample(&mut client)?;
        let body = render(&args.addr, &prev, &cur);
        if args.plain {
            print!("{body}");
        } else {
            // ANSI clear + home, then the frame.
            print!("\x1b[2J\x1b[H{body}");
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = cur;
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpa::serve::{QueryItem, QueryKind, ServeConfig, Server};

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn argument_parsing() {
        let a = parse_args(&argv(&[
            "--addr",
            "127.0.0.1:1",
            "--interval-ms",
            "250",
            "--frames",
            "3",
            "--plain",
        ]))
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:1");
        assert_eq!(a.interval, Duration::from_millis(250));
        assert_eq!(a.frames, Some(3));
        assert!(a.plain);
        assert!(parse_args(&argv(&[])).is_err(), "addr is required");
        assert!(parse_args(&argv(&["--frob"])).is_err());
        assert!(parse_args(&argv(&["--help"])).is_err());
        assert!(parse_args(&argv(&["--addr", "x", "--frames", "y"])).is_err());
    }

    /// The acceptance loopback: a live kpa-serve takes traffic, the
    /// dashboard samples it twice, and the rendered frame shows live
    /// qps and windowed p50/p99 from the rolling histograms.
    #[test]
    fn renders_live_qps_and_windowed_quantiles_against_a_loopback_server() {
        let mut server = Server::bind(ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();

        let mut driver = Client::connect(&addr).unwrap();
        driver.hello().unwrap();
        driver.load_named("secret-coin", "post").unwrap();

        let mut top = Client::connect(&addr).unwrap();
        top.hello().unwrap();
        let prev = sample(&mut top).unwrap();
        // Traffic between the two samples: queries that land in the
        // current rolling window.
        for _ in 0..5 {
            driver
                .query(&[QueryItem {
                    id: 1,
                    kind: QueryKind::Sat {
                        formula: "c=h".into(),
                    },
                }])
                .unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        let cur = sample(&mut top).unwrap();
        assert!(
            cur.requests >= prev.requests + 5,
            "driver traffic must show up in the process counters"
        );
        let frame_win = cur
            .windowed
            .iter()
            .find(|(name, ..)| name == "proc.frame_ns")
            .expect("proc.frame_ns is windowed");
        assert!(frame_win.1 >= 5, "frames landed inside the window");
        assert!(frame_win.2.is_some() && frame_win.3.is_some());
        let query_win = cur
            .windowed
            .iter()
            .find(|(name, ..)| name == "proc.query_ns")
            .expect("proc.query_ns is windowed");
        assert!(query_win.2.is_some() && query_win.3.is_some());

        let body = render(&addr, &prev, &cur);
        assert!(body.contains("qps "), "{body}");
        assert!(body.contains("proc.frame_ns"), "{body}");
        assert!(body.contains("proc.query_ns"), "{body}");
        assert!(body.contains("p50 "), "{body}");
        assert!(body.contains("p99 "), "{body}");
        assert!(body.contains("artifacts 1"), "{body}");
        // qps over the interval must be visibly nonzero.
        let qps_line = body.lines().nth(1).unwrap();
        assert!(!qps_line.starts_with("qps 0.0"), "{qps_line}");

        // The run loop itself works end-to-end in --frames mode.
        run(&argv(&[
            "--addr",
            &addr,
            "--interval-ms",
            "1",
            "--frames",
            "1",
            "--plain",
        ]))
        .unwrap();

        driver.bye().unwrap();
        server.shutdown();
        // A dead server is a clean error, not a hang.
        assert!(run(&argv(&["--addr", &addr, "--frames", "1", "--plain"])).is_err());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(2_048), "2.0us");
        assert_eq!(fmt_ns(3_500_000), "3.50ms");
        assert_eq!(fmt_ns(2_000_000_000), "2.00s");
    }
}
