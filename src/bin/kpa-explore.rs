//! `kpa-explore` — interactive queries over the paper's systems.
//!
//! ```console
//! $ kpa-explore --list
//! $ kpa-explore --system ca2 --info
//! $ kpa-explore --system ca2 --assignment post \
//!       --formula 'C{A,B}^0.99 <>coordinated'
//! $ kpa-explore --system secret-coin --assignment opp:p3 \
//!       --formula 'K{p1}(Pr{p1}(c=h) >= 1/2)' --at 0,0,1
//! ```
//!
//! Systems take an optional integer parameter: `ca1:4` builds the
//! 4-messenger attack, `async-coins:6` the 6-toss system, and so on.
//!
//! `--trace` enables the `kpa-trace` registry for the query and prints
//! the counter/histogram table afterwards — cache hit rates, dense
//! kernel traffic, pool scheduling, build times (equivalently, set
//! `KPA_TRACE=1` in the environment).
//!
//! `--trace-events` (implies `--trace`) additionally dumps the event
//! ring, the per-site span summary, the flamegraph-foldable span
//! stacks, and the Chrome `trace_event` JSON for the run — paste the
//! latter into `chrome://tracing` / Perfetto to see the request tree
//! on a timeline.
//!
//! `--shared N` re-answers the formula from `N` threads sharing one
//! `Arc<ModelArtifact>` (the concurrent query path), checks every
//! thread against the serial model bit-for-bit, and — combined with
//! `--trace` — reports per-memo shard hits and lock contention.
//!
//! `--connect HOST:PORT` replays the query against a running
//! `kpa-serve` instance (which loads the same system by name) and
//! bit-compares the server's point-set words with the local answer.

use kpa::assign::{Assignment, ProbAssignment};
use kpa::logic::{parse_in, Formula, Model, ModelArtifact};
use kpa::serve::catalog::{build_assignment, build_system, parse_point, SYSTEMS};
use kpa::serve::proto::words_from_value;
use kpa::serve::{Client, QueryItem, QueryKind};
use kpa::system::System;
use std::process::ExitCode;
use std::sync::Arc;

fn print_info(sys: &System) {
    println!("agents:  {}", sys.agents().join(", "));
    println!(
        "trees:   {} (type-1 adversaries: {})",
        sys.tree_count(),
        sys.tree_ids()
            .map(|t| sys.tree(t).name().to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "shape:   horizon {}, {} points, {}",
        sys.horizon(),
        sys.point_count(),
        if sys.is_synchronous() {
            "synchronous"
        } else {
            "asynchronous"
        }
    );
    let mut props = sys.prop_names();
    props.sort_unstable();
    println!("props:   {}", props.join(", "));
}

struct Args {
    list: bool,
    info: bool,
    trace: bool,
    trace_events: bool,
    system: Option<String>,
    assignment: String,
    formula: Option<String>,
    at: Option<String>,
    shared: Option<usize>,
    connect: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        list: false,
        info: false,
        trace: false,
        trace_events: false,
        system: None,
        assignment: "post".to_owned(),
        formula: None,
        at: None,
        shared: None,
        connect: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--info" => args.info = true,
            "--trace" => args.trace = true,
            "--trace-events" => {
                args.trace = true;
                args.trace_events = true;
            }
            "--system" => args.system = Some(take("--system")?),
            "--assignment" => args.assignment = take("--assignment")?,
            "--formula" => args.formula = Some(take("--formula")?),
            "--at" => args.at = Some(take("--at")?),
            "--shared" => {
                let n = take("--shared")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--shared expects a thread count; got {n:?}"))?;
                if n == 0 {
                    return Err("--shared needs at least one thread".to_owned());
                }
                args.shared = Some(n);
            }
            "--connect" => args.connect = Some(take("--connect")?),
            "--help" | "-h" => {
                return Err(
                    "usage: kpa-explore [--list] [--system NAME[:PARAM]] [--info] \
                            [--assignment post|fut|prior|opp:AGENT] [--formula F] \
                            [--at tree,run,time] [--shared N] [--connect HOST:PORT] \
                            [--trace] [--trace-events]\n\
                     --shared N answers the formula from N threads sharing one \
                     Arc<ModelArtifact>, checks them against the serial model, \
                     and (with --trace) reports memo shard hits\n\
                     --connect HOST:PORT replays the query against a running \
                     kpa-serve and bit-compares the answers"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Prints the trace table when `--trace` was given (tracing was
/// enabled before the system was built, so builder, cache, kernel,
/// and sweep counters all show up).
fn print_trace(on: bool) {
    if on {
        print!("\n{}", kpa_trace::registry().snapshot().render_table());
    }
}

/// `--trace-events`: dumps the raw event ring, the per-site span
/// summary, the flamegraph-foldable stacks, and the Chrome
/// `trace_event` JSON for everything this run recorded.
fn dump_trace_events(on: bool) {
    if !on {
        return;
    }
    let report = kpa_trace::registry().snapshot();
    println!(
        "\n== trace events ({} captured, {} dropped) ==",
        report.events.len(),
        report.dropped_events
    );
    for e in &report.events {
        println!(
            "  [{:>6}] {:>12} ns  {} = {}",
            e.seq, e.at_ns, e.name, e.value
        );
    }
    let (records, dropped) = kpa_trace::snapshot_span_records();
    println!(
        "== span sites ({} spans, {dropped} dropped) ==",
        records.len()
    );
    for s in kpa_trace::span_site_stats(&records) {
        println!(
            "  {:<28} count {:>6}  total {:>12} ns  max {:>10} ns",
            s.site, s.count, s.total_ns, s.max_ns
        );
    }
    println!("== span stacks (folded) ==");
    print!(
        "{}",
        kpa_trace::spans_to_folded(&kpa_trace::stitch_span_trees(&records))
    );
    println!("== chrome trace json ==");
    println!("{}", kpa_trace::spans_to_chrome_json(&records));
}

/// `--shared N`: answers the formula from `N` threads that share one
/// `Arc<ModelArtifact>`, asserts every thread agrees bit-for-bit with
/// the serial model's answer, and (under `--trace`) reports how the
/// artifact's sharded memos absorbed the concurrent traffic.
fn run_shared(
    clients: usize,
    sys: &System,
    assignment: &Assignment,
    formula: &Formula,
    serial_words: &[u64],
    trace: bool,
) -> Result<(), String> {
    let before = trace.then(|| kpa_trace::registry().snapshot());
    let artifact = Arc::new(ModelArtifact::new(
        Arc::new(sys.clone()),
        assignment.clone(),
    ));
    let results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let artifact = Arc::clone(&artifact);
                let formula = formula.clone();
                scope.spawn(move || {
                    let ctx = artifact.ctx();
                    ctx.sat(&formula)
                        .map(|sat| sat.as_words().to_vec())
                        .map_err(|e| e.to_string())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shared client panicked"))
            .collect()
    });
    for (client, result) in results.into_iter().enumerate() {
        let words = result?;
        if words != serial_words {
            return Err(format!(
                "shared client {client} disagreed with the serial model — \
                 this is a bug; please report it"
            ));
        }
    }
    println!(
        "shared:     {clients} threads × 1 artifact agreed with the serial model \
         (sat cache: {} formulas, knows memo: {}, Pr memo: {}, plans: {})",
        artifact.sat_cache_len(),
        artifact.subterm_memo_len(),
        artifact.pr_memo_len(),
        artifact.plans_built(),
    );
    if let Some(before) = before {
        let delta = kpa_trace::registry().snapshot().delta_counters(&before);
        for prefix in ["logic.sat_cache", "logic.subterm_memo", "logic.pr_memo"] {
            let sum = |suffix: &str| -> u64 {
                delta
                    .iter()
                    .filter(|(k, _)| {
                        k.starts_with(prefix) && k.contains(".shard") && k.ends_with(suffix)
                    })
                    .map(|(_, v)| v)
                    .sum()
            };
            let contention = delta
                .get(&format!("{prefix}.contention"))
                .copied()
                .unwrap_or(0);
            println!(
                "  {prefix}: {} shard hits, {} misses, {contention} contended locks",
                sum(".hit"),
                sum(".miss"),
            );
        }
    }
    Ok(())
}

/// `--connect HOST:PORT`: replays the query against a live `kpa-serve`
/// — the server loads the same `NAME[:PARAM]` system and assignment by
/// spec, answers `sat` over the wire, and the point-set words must
/// match the local model **bit for bit** (the protocol ships words as
/// hex strings precisely so this comparison is exact).
fn run_connect(
    addr: &str,
    system_spec: &str,
    assignment_spec: &str,
    formula_src: &str,
    serial_words: &[u64],
) -> Result<(), String> {
    fn fail(stage: &'static str) -> impl Fn(kpa::serve::ClientError) -> String {
        move |e| format!("{stage}: {e}")
    }
    let mut client = Client::connect(addr).map_err(fail("connect"))?;
    client.hello().map_err(fail("hello"))?;
    client
        .load_named(system_spec, assignment_spec)
        .map_err(fail("load"))?;
    let results = client
        .query(&[QueryItem {
            id: 1,
            kind: QueryKind::Sat {
                formula: formula_src.to_owned(),
            },
        }])
        .map_err(fail("query"))?;
    let words_v = results
        .first()
        .and_then(|r| r.get("words"))
        .ok_or("query reply carried no \"words\"")?;
    let words = words_from_value(words_v)?;
    if words != serial_words {
        return Err(format!(
            "server at {addr} disagreed with the local model — \
             this is a bug; please report it"
        ));
    }
    println!(
        "connect:    {addr} agreed with the local model bit-for-bit \
         ({} words)",
        words.len()
    );
    let _ = client.bye();
    Ok(())
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    if args.trace {
        kpa_trace::Trace::enabled(true);
        kpa_trace::registry().reset();
    }
    // Give the whole run one trace id, so its spans stitch into a
    // single tree in the --trace-events dump.
    let _run_id = args
        .trace_events
        .then(|| kpa_trace::ambient_guard(kpa_trace::next_trace_id()));
    if args.list {
        println!("built-in systems (NAME[:PARAM]):");
        for (name, desc, default) in SYSTEMS {
            println!("  {name:<14} {desc} (default param: {default})");
        }
        return Ok(());
    }
    let spec = args
        .system
        .as_deref()
        .ok_or("no --system given (try --list)")?;
    let sys = build_system(spec)?;
    if args.info || args.formula.is_none() {
        print_info(&sys);
    }
    let Some(formula_src) = args.formula else {
        print_trace(args.trace);
        dump_trace_events(args.trace_events);
        return Ok(());
    };
    let formula = parse_in(&formula_src, &sys).map_err(|e| e.to_string())?;
    let assignment = build_assignment(&args.assignment, &sys)?;
    println!("formula:    {formula}");
    println!("assignment: {}", assignment.name());
    let pa = ProbAssignment::new(&sys, assignment.clone());
    let model = Model::new(&pa);
    let sat = model.sat(&formula).map_err(|e| e.to_string())?;
    println!(
        "satisfied at {} of {} points; holds everywhere: {}",
        sat.len(),
        sys.point_count(),
        sat.len() == sys.point_count()
    );
    if let Some(clients) = args.shared {
        run_shared(
            clients,
            &sys,
            &assignment,
            &formula,
            sat.as_words(),
            args.trace,
        )?;
    }
    if let Some(addr) = &args.connect {
        run_connect(addr, spec, &args.assignment, &formula_src, sat.as_words())?;
    }
    if let Some(at) = args.at {
        let point = parse_point(&at, &sys)?;
        println!(
            "at {point}: {}",
            if sat.contains(point) {
                "holds"
            } else {
                "fails"
            }
        );
        for agent in (0..sys.agent_count()).map(kpa::system::AgentId) {
            let (lo, hi) = model
                .prob_interval(agent, point, &formula)
                .map_err(|e| e.to_string())?;
            println!(
                "  Pr_{}({}) in [{lo}, {hi}]",
                sys.agent_name(agent),
                if formula_src.len() <= 24 {
                    &formula_src
                } else {
                    "formula"
                }
            );
        }
    }
    print_trace(args.trace);
    dump_trace_events(args.trace_events);
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_every_system() {
        for (name, _, _) in SYSTEMS {
            assert!(build_system(name).is_ok(), "{name} failed to build");
        }
        assert!(build_system("ca1:2").is_ok());
        assert!(build_system("async-coins:3").is_ok());
        assert!(build_system("nope").is_err());
        assert!(build_system("ca1:x").is_err());
    }

    #[test]
    fn assignment_and_point_parsing() {
        let sys = build_system("secret-coin").unwrap();
        assert!(build_assignment("post", &sys).is_ok());
        assert!(build_assignment("opp:p3", &sys).is_ok());
        assert!(build_assignment("opp:nobody", &sys).is_err());
        assert!(build_assignment("bogus", &sys).is_err());
        assert!(parse_point("0,0,1", &sys).is_ok());
        assert!(parse_point("9,0,1", &sys).is_err());
        assert!(parse_point("0,9,1", &sys).is_err());
        assert!(parse_point("0,0,9", &sys).is_err());
        assert!(parse_point("0,0", &sys).is_err());
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn end_to_end_queries() {
        run(&argv(&["--list"])).unwrap();
        run(&argv(&["--system", "secret-coin", "--info"])).unwrap();
        run(&argv(&[
            "--system",
            "ca2:4",
            "--assignment",
            "post",
            "--formula",
            "C{A,B}^0.99 <>coordinated",
        ]))
        .unwrap();
        run(&argv(&[
            "--system",
            "secret-coin",
            "--assignment",
            "opp:p3",
            "--formula",
            "K{p1}(Pr{p1}(c=h) >= 1/2)",
            "--at",
            "0,0,1",
        ]))
        .unwrap();
        // --trace prints the registry table after the query (and is
        // observationally invisible to the query itself).
        run(&argv(&[
            "--system",
            "secret-coin",
            "--formula",
            "K{p3} c=h",
            "--trace",
        ]))
        .unwrap();
        kpa_trace::Trace::enabled(false);
        // --trace-events implies --trace and dumps rings/spans/exports.
        run(&argv(&[
            "--system",
            "secret-coin",
            "--formula",
            "K{p3} c=h",
            "--trace-events",
        ]))
        .unwrap();
        kpa_trace::Trace::enabled(false);
        // --shared N: concurrent clients over one artifact, checked
        // against the serial model (with and without --trace).
        run(&argv(&[
            "--system",
            "async-coins:3",
            "--formula",
            "Pr{p2}(recent=h) >= 1/2",
            "--shared",
            "4",
        ]))
        .unwrap();
        run(&argv(&[
            "--system",
            "secret-coin",
            "--formula",
            "K{p3} c=h",
            "--shared",
            "2",
            "--trace",
        ]))
        .unwrap();
        kpa_trace::Trace::enabled(false);
        // --connect: replay against a loopback kpa-serve and bit-check.
        let mut server = kpa::serve::Server::bind(kpa::serve::ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        run(&argv(&[
            "--system",
            "async-coins:3",
            "--assignment",
            "fut",
            "--formula",
            "Pr{p2}(recent=h) >= 1/2",
            "--connect",
            &addr,
        ]))
        .unwrap();
        server.shutdown();
        // A dead server is a clean error, not a hang or panic.
        assert!(run(&argv(&[
            "--system",
            "secret-coin",
            "--formula",
            "K{p3} c=h",
            "--connect",
            &addr,
        ]))
        .is_err());
        assert!(run(&argv(&["--system", "secret-coin", "--shared", "0"])).is_err());
        assert!(run(&argv(&["--system", "secret-coin", "--shared", "x"])).is_err());
        assert!(run(&argv(&[
            "--system",
            "secret-coin",
            "--formula",
            "K{ghost} x"
        ]))
        .is_err());
        assert!(run(&argv(&["--frob"])).is_err());
        assert!(run(&argv(&["--help"])).is_err());
    }
}
